//! The multi-party fleet: one logical server realised as `n` independent
//! parties, any `t` of which suffice to answer a wave.
//!
//! # Topology
//!
//! [`FleetTransport`] implements [`Transport`] and sits *under* the
//! existing [`ShardRouter`]: the router still plans waves, batches, and
//! speculation against `S` logical data shards, and each of its `S`
//! per-shard pipes is a fleet pipe fanning every frame to all `n` parties
//! over independent connections. Wave structure, batching decisions and
//! speculation counters are therefore **bit-identical** between the `n = 1`
//! single-party deployment and any fleet — the trust boundary moves, the
//! waves do not.
//!
//! # Party layout
//!
//! Each party hosts `2·S` filters over the *unchanged* wire protocol:
//! filters `0..S` hold the party's Shamir share of the data plane (the
//! familiar partitions), filters `S..2S` hold its share of the MAC plane
//! `α ⊙ data` ([`crate::encode::split_fleet`]). A fleet pipe mirrors every
//! data-plane request (`Eval`/`EvalMany`/`GetPolys`) to the MAC shard as a
//! second frame on the same connection, so each wire frame still addresses
//! exactly one shard and the frame format is untouched.
//!
//! # Reconstruction and verification
//!
//! * **Data-plane responses** (values, value vectors, packed polynomials)
//!   are Lagrange-combined at zero over the live responders and checked
//!   against the combined MAC: `α · s = m`. A mismatch with more than `t`
//!   responders is *attributed* by leave-one-out re-combination and the
//!   culprit is named and quarantined; with exactly `t` responders the
//!   corruption is still detected (the query errors), it just cannot be
//!   pinned on one party.
//! * **Structural responses** (locations, cursors, counts) carry no
//!   shares; they must agree byte-for-byte on a `≥ t` quorum, and any
//!   deviant is named.
//! * A party that fails at the transport level (dead at connect,
//!   mid-wave disconnect) is retired from the pipe; as long as `≥ t`
//!   parties answer, the wave completes with the correct result —
//!   dropout degrades latency, never correctness.
//!
//! # Writes
//!
//! `Insert` frames carry whole server-share rows, so a fleet pipe cannot
//! simply mirror them: each party must receive its *own* Shamir share of
//! every row. The pipe re-splits each row on the client side
//! ([`crate::encode::split_fleet_row`], bit-identical to the build-time
//! split) and sends per-party frame pairs — share rows to the data shard,
//! MAC rows to its mirror. Writes are never hedged and never answered
//! early: every participating leg must acknowledge, both planes of a
//! party must agree, and the acks must form a `≥ t` structural quorum.
//! A party that misses a write — absent from the wave, or failing
//! mid-application — has permanently diverged from the fleet's state and
//! is retired exactly like a party caught lying.

use crate::encode::{fleet_mac_key, split_fleet_row, FleetEncodeOutput, FleetSpec};
use crate::error::CoreError;
use crate::map::MapFile;
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use crate::router::ShardRouter;
use crate::server::ServerFilter;
use crate::shard::{partition_table, ShardSpec, ShardedServer};
use crate::transport::{MuxPool, MuxTransport, TcpTransport, Transport, TransportStats};
use ssx_poly::{lagrange_at_zero, Packer, RingCtx};
use ssx_prg::{Prg, Seed};
use ssx_store::{Loc, Table};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds one party's 2·S-filter server: data partitions `0..S`, MAC
/// partitions `S..2S`, both split by the same [`ShardSpec`] so a frame
/// addressed to data shard `k` has its MAC mirror at `S + k`.
pub fn party_server(
    data: Table,
    mac: Table,
    ring: &RingCtx,
    data_shards: u32,
) -> Result<ShardedServer, CoreError> {
    let spec = ShardSpec::new(data_shards);
    let mut filters = Vec::with_capacity(2 * spec.shards() as usize);
    for table in partition_table(data, spec)? {
        filters.push(ServerFilter::new(table, ring.clone()));
    }
    for table in partition_table(mac, spec)? {
        filters.push(ServerFilter::new(table, ring.clone()));
    }
    Ok(ShardedServer::from_filters(
        ShardSpec::new(2 * spec.shards()),
        filters,
    ))
}

/// In-process transport onto one fleet party: routes `ToShard` frames to
/// the party's filters like the TCP host does, with the same encode/decode
/// round trip so counted bytes match the wire exactly. Pipes of the same
/// party share the host through an `Arc<Mutex<_>>`.
pub struct LocalPartyTransport {
    host: Arc<Mutex<ShardedServer>>,
    stats: TransportStats,
}

impl LocalPartyTransport {
    /// Wraps a shared party host.
    pub fn new(host: Arc<Mutex<ShardedServer>>) -> Self {
        LocalPartyTransport {
            host,
            stats: TransportStats::default(),
        }
    }
}

impl Transport for LocalPartyTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        let decoded = decode_request(&frame)?;
        let (shard, inner): (u32, &Request) = match &decoded {
            Request::ToShard { shard, req } => (*shard, req),
            other => (0, other),
        };
        let resp = {
            let mut host = self.host.lock().unwrap_or_else(|p| p.into_inner());
            if matches!(inner, Request::ShardCount) {
                Response::Count(host.spec().shards() as u64)
            } else {
                host.handle(shard, inner)
            }
        };
        let resp_frame = encode_response(&resp);
        self.stats.bytes_received += resp_frame.len() as u64;
        self.stats.round_trips += 1;
        decode_response(&resp_frame)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// How a fleet pipe dials a replacement connection to one party, used for
/// in-wave retry reconnects and for re-admission probes. The argument is
/// the pipe's configured per-call deadline so the dial itself can be
/// bounded.
pub type Dialer<T> = Arc<dyn Fn(Option<Duration>) -> Result<T, CoreError> + Send + Sync>;

/// Where a party stands in a pipe's health state machine.
///
/// Availability faults walk `Live → Suspect → Quarantined`, sit out a
/// wave-counted cooldown, then re-enter through a probe as `Probation`
/// and are promoted back to `Live` by their first successful wave.
/// Integrity faults (a party caught lying) quarantine permanently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartyHealth {
    /// In rotation, answering waves.
    Live,
    /// One recent transient failure; still in rotation, but the next
    /// strike quarantines it.
    Suspect,
    /// Out of rotation, counting down its cooldown (integrity faults
    /// never count down).
    Quarantined,
    /// Passed a re-admission probe; back in rotation, one wave away from
    /// `Live` and one failure away from re-quarantine.
    Probation,
}

/// Snapshot of one party's standing, for operators and tests.
#[derive(Clone, Debug)]
pub struct PartyStatus {
    /// 1-based party id.
    pub party: usize,
    /// Where the leg points (`"local"` for in-process legs).
    pub addr: String,
    /// Current health state.
    pub health: PartyHealth,
    /// Waves this leg has answered successfully.
    pub waves_ok: u64,
    /// Most recent recorded fault, if any.
    pub fault: Option<String>,
}

/// A failed re-admission probe doubles the cooldown up to this many times
/// the configured base, so a flapping party backs off but is never written
/// off for good.
pub const COOLDOWN_PENALTY_CAP: u64 = 64;

/// Resilience policy for a fleet pipe: deadlines, bounded retry, hedged
/// reconstruction and quarantine cooldowns. Installed with
/// [`FleetTransport::set_resilience`].
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Per-call budget applied to every leg transport (`None` = wait
    /// forever, the pre-resilience behaviour).
    pub deadline: Option<Duration>,
    /// Transient-failure retries per leg per wave (0 = fail fast).
    pub retries: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Answer each wave as soon as `t` verified responses arrive, draining
    /// stragglers in the background ([`TransportStats::hedged_wins`]).
    pub hedge: bool,
    /// Waves a quarantined party sits out before its first re-admission
    /// probe; doubles per failed probe up to [`COOLDOWN_PENALTY_CAP`]×.
    pub cooldown_waves: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            deadline: None,
            retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            hedge: false,
            cooldown_waves: 4,
            jitter_seed: 0x5f33_7d1e,
        }
    }
}

impl ResilienceConfig {
    /// Backoff before retry `attempt` (1-based): `base · 2^(attempt−1)`
    /// plus deterministic jitter in `[0, base)`, capped at `backoff_cap`.
    pub fn backoff(&self, attempt: u32, jitter_raw: u64) -> Duration {
        let base = self.backoff_base.max(Duration::from_micros(100));
        let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let jitter = Duration::from_micros(jitter_raw % base.as_micros().max(1) as u64);
        (exp + jitter).min(self.backoff_cap)
    }
}

/// `Timeout` and `Transport` failures are worth retrying — the party may
/// be back (or reachable over a fresh connection) a backoff later.
/// Integrity and protocol errors are not.
fn is_transient(e: &CoreError) -> bool {
    matches!(e, CoreError::Timeout(_) | CoreError::Transport(_))
}

fn next_penalty(penalty: u64, base: u64) -> u64 {
    let base = base.max(1);
    if penalty == 0 {
        base
    } else {
        penalty.saturating_mul(2).min(base * COOLDOWN_PENALTY_CAP)
    }
}

/// One party's connection inside a fleet pipe.
pub struct FleetLeg<T> {
    party: usize,
    addr: String,
    transport: Option<T>,
    dial: Option<Dialer<T>>,
    health: PartyHealth,
    strikes: u32,
    cooldown: u64,
    penalty: u64,
    waves_ok: u64,
    fault: Option<String>,
}

impl<T> FleetLeg<T> {
    /// A live leg to 1-based `party`.
    pub fn up(party: usize, transport: T) -> Self {
        FleetLeg {
            party,
            addr: "local".into(),
            transport: Some(transport),
            dial: None,
            health: PartyHealth::Live,
            strikes: 0,
            cooldown: 0,
            penalty: 0,
            waves_ok: 0,
            fault: None,
        }
    }

    /// A leg that was already down when the pipe was built (e.g. dead at
    /// connect); the pipe starts degraded but functional. With a
    /// [`Dialer`] attached the party is probed for re-admission from the
    /// first wave on.
    pub fn down(party: usize, fault: String) -> Self {
        FleetLeg {
            party,
            addr: "local".into(),
            transport: None,
            dial: None,
            health: PartyHealth::Quarantined,
            strikes: 0,
            cooldown: 0,
            penalty: 0,
            waves_ok: 0,
            fault: Some(fault),
        }
    }

    /// Labels the leg with the party's address; every fault raised for
    /// this leg names it.
    pub fn at(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Attaches a dialer for in-wave retry reconnects and re-admission
    /// probes. Without one, a quarantined leg stays quarantined.
    pub fn with_dialer(mut self, dial: Dialer<T>) -> Self {
        self.dial = Some(dial);
        self
    }

    /// Records a successful wave: strikes clear, the leg is (back to)
    /// `Live`, penalties reset.
    fn note_success(&mut self) {
        self.strikes = 0;
        self.waves_ok += 1;
        self.penalty = 0;
        self.health = PartyHealth::Live;
        self.fault = None;
    }
}

impl<T: Transport> FleetLeg<T> {
    /// Folds the leg transport's traffic counters into the pipe carry and
    /// drops the connection.
    fn fold_transport(&mut self, carry: &mut TransportStats) {
        if let Some(t) = self.transport.take() {
            let s = t.stats();
            carry.bytes_sent += s.bytes_sent;
            carry.bytes_received += s.bytes_received;
        }
    }

    /// Records a failed wave. The first strike on a `Live` leg demotes it
    /// to `Suspect` but keeps it in rotation (it may answer the next wave
    /// over a retried connection); any further failure — or a failure on
    /// `Probation` — quarantines it for a wave-counted cooldown.
    fn strike(&mut self, carry: &mut TransportStats, base_cooldown: u64, fault: String) {
        self.strikes += 1;
        self.fault = Some(fault);
        if self.health == PartyHealth::Live && self.strikes < 2 {
            self.health = PartyHealth::Suspect;
        } else {
            self.fold_transport(carry);
            self.health = PartyHealth::Quarantined;
            self.penalty = next_penalty(self.penalty, base_cooldown);
            self.cooldown = self.penalty;
        }
    }

    /// Permanent quarantine for integrity faults — a party caught lying
    /// is never probed for re-admission.
    fn quarantine_integrity(&mut self, carry: &mut TransportStats, fault: String) {
        self.fold_transport(carry);
        self.health = PartyHealth::Quarantined;
        self.cooldown = u64::MAX;
        self.penalty = u64::MAX;
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }
}

/// What a detached leg worker reports back: the leg's transport (returned
/// to its slot), the exchange outcome, and the traffic counters of any
/// connections discarded by in-wave re-dials (folded into the pipe carry
/// so cumulative stats never regress).
struct LegReport<T> {
    transport: T,
    outcome: Result<(Response, Option<Response>), CoreError>,
    finished: Instant,
    lost: TransportStats,
}

/// A hedged wave's straggler channel: legs still out with detached
/// workers after the wave was answered from `t` responses. Harvested
/// without blocking at the start of later waves.
struct PendingWave<T> {
    rx: mpsc::Receiver<(usize, LegReport<T>)>,
    outstanding: Vec<usize>,
    done: Instant,
}

/// Sends the data frame (and MAC mirror, when present) down one leg.
fn exchange<T: Transport>(
    transport: &mut T,
    data_frame: &Request,
    mirror_frame: Option<&Request>,
) -> Result<(Response, Option<Response>), CoreError> {
    let data = transport.call(data_frame)?;
    let mac = match mirror_frame {
        Some(f) => Some(transport.call(f)?),
        None => None,
    };
    Ok((data, mac))
}

/// One leg's wave: exchange, and on a transient failure retry up to
/// `cfg.retries` times with exponential backoff and deterministic jitter,
/// re-dialing a fresh connection through the leg's [`Dialer`] when one is
/// available. Always hands the transport back.
fn exchange_with_retry<T: Transport>(
    mut transport: T,
    data_frame: &Request,
    mirror_frame: Option<&Request>,
    cfg: &ResilienceConfig,
    dial: Option<&Dialer<T>>,
    jitter_seed: u64,
) -> LegReport<T> {
    let mut prg = Prg::from_u64(jitter_seed);
    let mut attempt = 0u32;
    let mut lost = TransportStats::default();
    loop {
        match exchange(&mut transport, data_frame, mirror_frame) {
            Ok(v) => {
                return LegReport {
                    transport,
                    outcome: Ok(v),
                    finished: Instant::now(),
                    lost,
                }
            }
            Err(e) if attempt < cfg.retries && is_transient(&e) => {
                attempt += 1;
                std::thread::sleep(cfg.backoff(attempt, prg.next_u64()));
                if let Some(dial) = dial {
                    if let Ok(mut fresh) = dial(cfg.deadline) {
                        fresh.set_call_budget(cfg.deadline);
                        let s = transport.stats();
                        lost.bytes_sent += s.bytes_sent;
                        lost.bytes_received += s.bytes_received;
                        transport = fresh;
                    }
                }
            }
            Err(e) => {
                return LegReport {
                    transport,
                    outcome: Err(e),
                    finished: Instant::now(),
                    lost,
                }
            }
        }
    }
}

/// Which parts of a wave were mirrored to the MAC plane.
enum MirrorPlan {
    /// No data-plane content; structural agreement only.
    None,
    /// The whole request is data-plane.
    Whole,
    /// A batch whose listed slot indices are data-plane.
    Slots(Vec<usize>),
}

fn is_data_plane(req: &Request) -> bool {
    matches!(
        req,
        Request::Eval { .. }
            | Request::EvalMany { .. }
            | Request::GetPolys { .. }
            // Aggregate frames carry share content (grouped partial sums /
            // fetched rows); the MAC mirror reuses the same `expect_epoch`,
            // valid because every write bumps both planes' epochs in
            // lockstep. `AGG_CHECK` rides along harmlessly: both planes
            // answer the same empty frame and agree structurally.
            | Request::Agg { .. }
    )
}

/// The MAC mirror of `inner`, if any part of it is data-plane.
fn mirror_of(inner: &Request) -> (Option<Request>, MirrorPlan) {
    match inner {
        r if is_data_plane(r) => (Some(r.clone()), MirrorPlan::Whole),
        Request::Batch(subs) => {
            let idx: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, r)| is_data_plane(r))
                .map(|(i, _)| i)
                .collect();
            if idx.is_empty() {
                (None, MirrorPlan::None)
            } else {
                let sel = idx.iter().map(|&i| subs[i].clone()).collect();
                (Some(Request::Batch(sel)), MirrorPlan::Slots(idx))
            }
        }
        _ => (None, MirrorPlan::None),
    }
}

/// Outcome of a combination step that did not produce a clean response.
enum FleetError {
    /// Specific parties were caught deviating; they are quarantined and the
    /// wave errors naming them.
    Blamed { parties: Vec<usize>, detail: String },
    /// Corruption or disagreement detected but not attributable.
    Fatal(String),
}

/// Fans every wave to all parties of one data shard, reconstructs with
/// MAC verification, and tolerates up to `n − t` dead parties. See the
/// module docs for the full protocol.
pub struct FleetTransport<T> {
    legs: Vec<FleetLeg<T>>,
    threshold: usize,
    data_shards: u32,
    shard: u32,
    ring: RingCtx,
    packer: Packer,
    alpha: u64,
    concurrent: bool,
    config: ResilienceConfig,
    pending: Vec<PendingWave<T>>,
    stats: TransportStats,
    write_seed: Option<Seed>,
}

impl<T: Transport> FleetTransport<T> {
    /// Assembles a fleet pipe for data shard `shard` of `data_shards`.
    /// `alpha` is the MAC key ([`fleet_mac_key`]); `concurrent` fans the
    /// legs out on scoped threads (use for network legs).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        legs: Vec<FleetLeg<T>>,
        threshold: usize,
        data_shards: u32,
        shard: u32,
        ring: RingCtx,
        packer: Packer,
        alpha: u64,
        concurrent: bool,
    ) -> Self {
        assert!(threshold >= 1 && threshold <= legs.len());
        FleetTransport {
            legs,
            threshold,
            data_shards,
            shard,
            ring,
            packer,
            alpha,
            concurrent,
            config: ResilienceConfig::default(),
            pending: Vec::new(),
            stats: TransportStats::default(),
            write_seed: None,
        }
    }

    /// Arms the pipe's write path. Incoming `Insert` rows are re-split
    /// per party with this seed ([`crate::encode::split_fleet_row`]),
    /// bit-identical to the build-time [`crate::encode::split_fleet`];
    /// without a seed, write frames error instead of fanning.
    pub fn set_split_seed(&mut self, seed: Seed) {
        self.write_seed = Some(seed);
    }

    /// Installs the resilience policy, applying its deadline to every
    /// live leg immediately.
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        self.config = cfg;
        for leg in self.legs.iter_mut() {
            if let Some(t) = leg.transport.as_mut() {
                t.set_call_budget(cfg.deadline);
            }
        }
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> ResilienceConfig {
        self.config
    }

    /// Health snapshot of every party, in party order.
    pub fn party_status(&self) -> Vec<PartyStatus> {
        self.legs
            .iter()
            .map(|l| PartyStatus {
                party: l.party,
                addr: l.addr.clone(),
                health: l.health,
                waves_ok: l.waves_ok,
                fault: l.fault.clone(),
            })
            .collect()
    }

    /// 1-based ids of parties still in the wave rotation.
    pub fn live_parties(&self) -> Vec<usize> {
        self.legs
            .iter()
            .filter(|l| l.health != PartyHealth::Quarantined)
            .map(|l| l.party)
            .collect()
    }

    /// `(party, fault)` for every retired leg.
    pub fn faults(&self) -> Vec<(usize, String)> {
        self.legs
            .iter()
            .filter_map(|l| l.fault.clone().map(|f| (l.party, f)))
            .collect()
    }

    /// Collects answers from hedged-wave stragglers, returning their
    /// transports to the rotation and crediting
    /// [`TransportStats::straggler_ms`] with how long each ran past its
    /// wave's cutoff. Read waves harvest without blocking; a write wave
    /// passes `block` to wait every straggler home first, so no leg's
    /// transport is out with an old read when the write fans out.
    fn harvest_stragglers(&mut self, block: bool) {
        if self.pending.is_empty() {
            return;
        }
        let base = self.config.cooldown_waves;
        let mut pending = std::mem::take(&mut self.pending);
        for wave in &mut pending {
            loop {
                if block && wave.outstanding.is_empty() {
                    break;
                }
                let received = if block {
                    wave.rx.recv().map_err(|_| mpsc::TryRecvError::Disconnected)
                } else {
                    wave.rx.try_recv()
                };
                match received {
                    Ok((idx, report)) => {
                        wave.outstanding.retain(|&i| i != idx);
                        let lag = report.finished.saturating_duration_since(wave.done);
                        self.stats.straggler_ms += lag.as_millis() as u64;
                        self.stats.bytes_sent += report.lost.bytes_sent;
                        self.stats.bytes_received += report.lost.bytes_received;
                        let leg = &mut self.legs[idx];
                        leg.transport = Some(report.transport);
                        match report.outcome {
                            Ok(_) => leg.note_success(),
                            Err(e) => leg.strike(&mut self.stats, base, e.to_string()),
                        }
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // The workers are gone; a leg still listed lost its
                        // transport with its worker.
                        for idx in wave.outstanding.drain(..) {
                            self.legs[idx].strike(
                                &mut self.stats,
                                base,
                                "fleet leg worker lost".into(),
                            );
                        }
                        break;
                    }
                }
            }
        }
        pending.retain(|w| !w.outstanding.is_empty());
        self.pending = pending;
    }

    /// Walks quarantined legs: counts each cooldown down one wave and, at
    /// zero, re-dials and probes the party (a `ShardCount` round trip that
    /// must report the fleet's own layout). A passed probe re-admits the
    /// party on [`PartyHealth::Probation`]; a failed one doubles the
    /// cooldown. Integrity quarantines (`cooldown == u64::MAX`) and legs
    /// without a dialer are skipped.
    fn tick_readmission(&mut self) {
        let deadline = self.config.deadline;
        let expect = 2 * self.data_shards as u64;
        let base = self.config.cooldown_waves;
        for leg in self.legs.iter_mut() {
            if leg.health != PartyHealth::Quarantined || leg.cooldown == u64::MAX {
                continue;
            }
            let Some(dial) = leg.dial.as_ref() else {
                continue;
            };
            if leg.cooldown > 0 {
                leg.cooldown -= 1;
                continue;
            }
            let outcome = dial(deadline).and_then(|mut t| {
                t.set_call_budget(deadline);
                match t.call(&Request::ShardCount)? {
                    Response::Count(c) if c == expect => Ok(t),
                    other => Err(CoreError::Transport(format!(
                        "probe expected Count({expect}), got {other:?}"
                    ))),
                }
            });
            match outcome {
                Ok(t) => {
                    leg.transport = Some(t);
                    leg.health = PartyHealth::Probation;
                    leg.strikes = 0;
                    // The fault stays on record until a successful wave.
                }
                Err(e) => {
                    leg.penalty = next_penalty(leg.penalty, base);
                    leg.cooldown = leg.penalty;
                    leg.fault = Some(format!("re-admission probe failed: {e}"));
                }
            }
        }
    }

    /// Lagrange-combines per-party vectors and verifies every element
    /// against the combined MAC (`α · s = m`). On mismatch, attributes by
    /// leave-one-out when the responder count allows it.
    fn verified_vector(
        &self,
        parties: &[usize],
        data: &[Vec<u64>],
        mac: &[Vec<u64>],
    ) -> Result<Vec<u64>, FleetError> {
        let field = self.ring.field();
        let m = parties.len();
        let len = data[0].len();
        let try_subset = |sel: &[usize]| -> Option<Vec<u64>> {
            let xs: Vec<u64> = sel
                .iter()
                .map(|&k| FleetSpec::party_x(parties[k]))
                .collect();
            let lambda = lagrange_at_zero(field, &xs)?;
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                let mut s = field.zero();
                let mut w = field.zero();
                for (&k, &l) in sel.iter().zip(&lambda) {
                    s = field.add(s, field.mul(l, data[k][i]));
                    w = field.add(w, field.mul(l, mac[k][i]));
                }
                if field.mul(self.alpha, s) != w {
                    return None;
                }
                out.push(s);
            }
            Some(out)
        };
        let all: Vec<usize> = (0..m).collect();
        if let Some(out) = try_subset(&all) {
            return Ok(out);
        }
        if m > self.threshold {
            let mut culprit: Option<usize> = None;
            let mut ambiguous = false;
            for skip in 0..m {
                let sel: Vec<usize> = (0..m).filter(|&k| k != skip).collect();
                if sel.len() < self.threshold {
                    continue;
                }
                if try_subset(&sel).is_some() {
                    if culprit.is_some() {
                        ambiguous = true;
                        break;
                    }
                    culprit = Some(skip);
                }
            }
            if let (Some(skip), false) = (culprit, ambiguous) {
                let p = parties[skip];
                return Err(FleetError::Blamed {
                    parties: vec![p],
                    detail: format!(
                        "MAC verification failed; corrupted share attributed to party {p}"
                    ),
                });
            }
            return Err(FleetError::Fatal(format!(
                "MAC verification failed and attribution was ambiguous among parties {parties:?}"
            )));
        }
        Err(FleetError::Fatal(format!(
            "MAC verification failed with exactly {m} responders (parties {parties:?}); \
             more than threshold {} responders are needed to attribute the corruption",
            self.threshold
        )))
    }

    /// Requires a `≥ t`, byte-identical quorum on a structural response;
    /// deviants are blamed by name.
    fn structural_majority(&self, parts: &[(usize, &Response)]) -> Result<Response, FleetError> {
        let mut groups: Vec<(Vec<usize>, &Response)> = Vec::new();
        for &(party, resp) in parts {
            match groups.iter_mut().find(|(_, r)| *r == resp) {
                Some(g) => g.0.push(party),
                None => groups.push((vec![party], resp)),
            }
        }
        groups.sort_by_key(|(ps, _)| std::cmp::Reverse(ps.len()));
        let all: Vec<usize> = parts.iter().map(|&(p, _)| p).collect();
        let (winners, resp) = &groups[0];
        if winners.len() < self.threshold {
            return Err(FleetError::Fatal(format!(
                "no {}-party agreement on a structural response among parties {all:?}",
                self.threshold
            )));
        }
        if groups.len() > 1 && groups[1].0.len() >= self.threshold {
            return Err(FleetError::Fatal(format!(
                "two quorums disagree on a structural response (parties {:?} vs {:?})",
                winners, groups[1].0
            )));
        }
        let deviants: Vec<usize> = all
            .iter()
            .copied()
            .filter(|p| !winners.contains(p))
            .collect();
        if !deviants.is_empty() {
            let detail = if deviants.len() == 1 {
                format!(
                    "party {} disagreed with the {}-party quorum on a structural response",
                    deviants[0],
                    winners.len()
                )
            } else {
                format!(
                    "parties {deviants:?} disagreed with the {}-party quorum on a structural response",
                    winners.len()
                )
            };
            return Err(FleetError::Blamed {
                parties: deviants,
                detail,
            });
        }
        Ok((*resp).clone())
    }

    /// Combines one data-plane slot: per-party shares plus their MAC
    /// mirrors, matched by response shape.
    fn combine_data_slot(
        &self,
        parts: &[(usize, &Response)],
        macs: &[(usize, &Response)],
    ) -> Result<Response, FleetError> {
        let parties: Vec<usize> = parts.iter().map(|&(p, _)| p).collect();
        // Scalar evaluation.
        if parts.iter().all(|(_, r)| matches!(r, Response::Value(_)))
            && macs.iter().all(|(_, r)| matches!(r, Response::Value(_)))
        {
            let data: Vec<Vec<u64>> = parts
                .iter()
                .map(|(_, r)| match r {
                    Response::Value(v) => vec![*v],
                    _ => unreachable!(),
                })
                .collect();
            let mac: Vec<Vec<u64>> = macs
                .iter()
                .map(|(_, r)| match r {
                    Response::Value(v) => vec![*v],
                    _ => unreachable!(),
                })
                .collect();
            let out = self.verified_vector(&parties, &data, &mac)?;
            return Ok(Response::Value(out[0]));
        }
        // Evaluation vectors of one common length.
        let values_of = |r: &Response| match r {
            Response::Values(v) => Some(v.clone()),
            _ => None,
        };
        if let (Some(data), Some(mac)) = (
            parts
                .iter()
                .map(|(_, r)| values_of(r))
                .collect::<Option<Vec<_>>>(),
            macs.iter()
                .map(|(_, r)| values_of(r))
                .collect::<Option<Vec<_>>>(),
        ) {
            let len = data[0].len();
            if data.iter().all(|v| v.len() == len) && mac.iter().all(|v| v.len() == len) {
                return Ok(Response::Values(
                    self.verified_vector(&parties, &data, &mac)?,
                ));
            }
        }
        // Packed polynomials: unpack, combine coefficient-wise, repack.
        let polys_of = |r: &Response| match r {
            Response::Polys(p) => Some(p.clone()),
            _ => None,
        };
        if let (Some(data), Some(mac)) = (
            parts
                .iter()
                .map(|(_, r)| polys_of(r))
                .collect::<Option<Vec<_>>>(),
            macs.iter()
                .map(|(_, r)| polys_of(r))
                .collect::<Option<Vec<_>>>(),
        ) {
            let count = data[0].len();
            if data.iter().all(|p| p.len() == count) && mac.iter().all(|p| p.len() == count) {
                let mut out = Vec::with_capacity(count);
                for j in 0..count {
                    let unpack = |bytes: &[u8], party: usize| {
                        self.packer.unpack_radix(&self.ring, bytes).map_err(|e| {
                            FleetError::Blamed {
                                parties: vec![party],
                                detail: format!(
                                    "party {party} returned an undecodable share polynomial: {e}"
                                ),
                            }
                        })
                    };
                    let mut dcoeffs = Vec::with_capacity(parties.len());
                    let mut mcoeffs = Vec::with_capacity(parties.len());
                    for (k, &p) in parties.iter().enumerate() {
                        dcoeffs.push(unpack(&data[k][j], p)?.coeffs().to_vec());
                        mcoeffs.push(unpack(&mac[k][j], p)?.coeffs().to_vec());
                    }
                    let combined = self.verified_vector(&parties, &dcoeffs, &mcoeffs)?;
                    let poly = self
                        .ring
                        .poly_from_coeffs(combined)
                        .map_err(|e| FleetError::Fatal(format!("recombined polynomial: {e}")))?;
                    out.push(self.packer.pack_radix(&poly));
                }
                return Ok(Response::Polys(out));
            }
        }
        // Aggregate responses: the `found` lists are structural (every
        // honest party computed them from the same table layout and they
        // must agree byte-for-byte, across both planes), while the grouped
        // partial sums are share data — combined coefficient-wise under the
        // MAC exactly like packed polynomials. Summation is linear, so the
        // MAC plane's grouped sums are `α ⊙` the data plane's and the
        // `α · s = m` check carries over unchanged.
        fn agg_of(r: &Response) -> Option<(&Vec<u32>, &Vec<Vec<u8>>)> {
            match r {
                Response::Agg { found, partials } => Some((found, partials)),
                _ => None,
            }
        }
        if let (Some(data), Some(mac)) = (
            parts
                .iter()
                .map(|(_, r)| agg_of(r))
                .collect::<Option<Vec<_>>>(),
            macs.iter()
                .map(|(_, r)| agg_of(r))
                .collect::<Option<Vec<_>>>(),
        ) {
            let (found0, partials0) = data[0];
            let shape_ok =
                |(f, p): &(&Vec<u32>, &Vec<Vec<u8>>)| *f == found0 && p.len() == partials0.len();
            if data.iter().all(shape_ok) && mac.iter().all(shape_ok) {
                let count = partials0.len();
                let mut out = Vec::with_capacity(count);
                for j in 0..count {
                    let unpack = |bytes: &[u8], party: usize| {
                        self.packer.unpack_radix(&self.ring, bytes).map_err(|e| {
                            FleetError::Blamed {
                                parties: vec![party],
                                detail: format!(
                                    "party {party} returned an undecodable aggregate partial: {e}"
                                ),
                            }
                        })
                    };
                    let mut dcoeffs = Vec::with_capacity(parties.len());
                    let mut mcoeffs = Vec::with_capacity(parties.len());
                    for (k, &p) in parties.iter().enumerate() {
                        dcoeffs.push(unpack(&data[k].1[j], p)?.coeffs().to_vec());
                        mcoeffs.push(unpack(&mac[k].1[j], p)?.coeffs().to_vec());
                    }
                    let combined = self.verified_vector(&parties, &dcoeffs, &mcoeffs)?;
                    let poly = self
                        .ring
                        .poly_from_coeffs(combined)
                        .map_err(|e| FleetError::Fatal(format!("recombined partial: {e}")))?;
                    out.push(self.packer.pack_radix(&poly));
                }
                return Ok(Response::Agg {
                    found: found0.clone(),
                    partials: out,
                });
            }
            // A deviant `found` list or partial count is a structural lie;
            // fall through so the quorum rule names the culprit.
            return self.structural_majority(parts);
        }
        // Mixed or unexpected shapes (e.g. an agreed per-slot error):
        // structural agreement is the only safe rule left.
        self.structural_majority(parts)
    }

    /// Combines one wave's live responses according to the mirror plan.
    fn combine_wave(
        &self,
        live: &[(usize, Response, Option<Response>)],
        plan: &MirrorPlan,
    ) -> Result<Response, FleetError> {
        let parts: Vec<(usize, &Response)> = live.iter().map(|(p, d, _)| (*p, d)).collect();
        match plan {
            MirrorPlan::None => self.structural_majority(&parts),
            MirrorPlan::Whole => {
                let macs: Vec<(usize, &Response)> = live
                    .iter()
                    .filter_map(|(p, _, m)| m.as_ref().map(|m| (*p, m)))
                    .collect();
                if macs.len() != parts.len() {
                    return Err(FleetError::Fatal(
                        "a mirrored wave is missing MAC responses".into(),
                    ));
                }
                self.combine_data_slot(&parts, &macs)
            }
            MirrorPlan::Slots(idx) => {
                // Every live party must agree this is a batch of the same
                // slot count, with a MAC batch parallel to `idx`.
                let batch_of = |r: &Response| match r {
                    Response::Batch(slots) => Some(slots.len()),
                    _ => None,
                };
                let shapes: Option<Vec<usize>> = parts.iter().map(|(_, r)| batch_of(r)).collect();
                let mac_ok = live.iter().all(|(_, _, m)| {
                    matches!(m, Some(Response::Batch(slots)) if slots.len() == idx.len())
                });
                let Some(counts) = shapes else {
                    // Not everyone answered with a batch (e.g. an agreed
                    // top-level error such as the reshard fence).
                    return self.structural_majority(&parts);
                };
                if counts.windows(2).any(|w| w[0] != w[1]) || !mac_ok {
                    return self.structural_majority(&parts);
                }
                let slot_count = counts[0];
                fn slots_of(r: &Response) -> &Vec<Response> {
                    match r {
                        Response::Batch(slots) => slots,
                        _ => unreachable!(),
                    }
                }
                let mut out = Vec::with_capacity(slot_count);
                for i in 0..slot_count {
                    let slot_parts: Vec<(usize, &Response)> =
                        live.iter().map(|(p, d, _)| (*p, &slots_of(d)[i])).collect();
                    if let Ok(pos) = idx.binary_search(&i) {
                        let slot_macs: Vec<(usize, &Response)> = live
                            .iter()
                            .map(|(p, _, m)| {
                                (*p, &slots_of(m.as_ref().expect("mac batch checked"))[pos])
                            })
                            .collect();
                        out.push(self.combine_data_slot(&slot_parts, &slot_macs)?);
                    } else {
                        out.push(self.structural_majority(&slot_parts)?);
                    }
                }
                Ok(Response::Batch(out))
            }
        }
    }
}

impl<T: Transport + Send + 'static> FleetTransport<T> {
    /// One write wave. Inserts are re-split per party so each leg gets
    /// its own `(data, MAC)` frame pair; deletes fan the same pair to
    /// every leg. Never hedged: the wave waits for every participating
    /// leg, requires both planes of a party to acknowledge identically,
    /// and answers from a `≥ t` structural quorum. Any party that misses
    /// the write — absent, failed mid-application, or deviant — is
    /// quarantined permanently, because its state has diverged and a
    /// re-admission probe cannot detect that.
    fn write_wave(&mut self, dshard: u32, inner: &Request) -> Result<Response, CoreError> {
        let n = self.legs.len();
        // Per-leg frame pairs (data plane, MAC plane), indexed like `legs`.
        let frames: Vec<(Request, Request)> = match inner {
            Request::Insert { rows } => {
                let seed = self.write_seed.clone().ok_or_else(|| {
                    CoreError::Transport("fleet pipe has no split seed; writes are disabled".into())
                })?;
                let spec = FleetSpec::new(n, self.threshold)?;
                let mut data: Vec<Vec<(Loc, Vec<u8>)>> =
                    (0..n).map(|_| Vec::with_capacity(rows.len())).collect();
                let mut mac: Vec<Vec<(Loc, Vec<u8>)>> =
                    (0..n).map(|_| Vec::with_capacity(rows.len())).collect();
                for (loc, poly) in rows {
                    let shares =
                        split_fleet_row(&self.ring, &self.packer, &seed, spec, loc.pre, poly)?;
                    for (j, (d, m)) in shares.into_iter().enumerate() {
                        data[j].push((*loc, d));
                        mac[j].push((*loc, m));
                    }
                }
                data.into_iter()
                    .zip(mac)
                    .map(|(d, m)| {
                        (
                            Request::ToShard {
                                shard: dshard,
                                req: Box::new(Request::Insert { rows: d }),
                            },
                            Request::ToShard {
                                shard: self.data_shards + dshard,
                                req: Box::new(Request::Insert { rows: m }),
                            },
                        )
                    })
                    .collect()
            }
            Request::Delete { pres } => (0..n)
                .map(|_| {
                    (
                        Request::ToShard {
                            shard: dshard,
                            req: Box::new(Request::Delete { pres: pres.clone() }),
                        },
                        Request::ToShard {
                            shard: self.data_shards + dshard,
                            req: Box::new(Request::Delete { pres: pres.clone() }),
                        },
                    )
                })
                .collect(),
            other => unreachable!("write_wave on non-write frame {other:?}"),
        };

        // A party that cannot take this write diverges from the fleet's
        // state for good; re-admitting it later would serve stale shares.
        for leg in self.legs.iter_mut() {
            if leg.transport.is_none() && leg.cooldown != u64::MAX {
                leg.quarantine_integrity(
                    &mut self.stats,
                    "missed a write; party state diverged".into(),
                );
            }
        }

        let avail: Vec<usize> = self
            .legs
            .iter()
            .enumerate()
            .filter(|(_, l)| l.transport.is_some())
            .map(|(i, _)| i)
            .collect();
        let cfg = self.config;
        let wave = self.stats.round_trips;
        let leg_seed = |party: usize| cfg.jitter_seed ^ ((party as u64) << 32) ^ wave;

        let mut live: Vec<(usize, Response, Option<Response>)> = Vec::new();
        let mut ok_legs: Vec<usize> = Vec::new();
        let mut failed: Vec<(usize, CoreError)> = Vec::new();
        if self.concurrent && avail.len() > 1 {
            let (tx, rx) = mpsc::channel::<(usize, LegReport<T>)>();
            for &idx in &avail {
                let leg = &mut self.legs[idx];
                let transport = leg.transport.take().expect("leg checked live");
                let dial = leg.dial.clone();
                let seed = leg_seed(leg.party);
                let tx = tx.clone();
                let (df, mf) = frames[idx].clone();
                std::thread::spawn(move || {
                    let report =
                        exchange_with_retry(transport, &df, Some(&mf), &cfg, dial.as_ref(), seed);
                    let _ = tx.send((idx, report));
                });
            }
            drop(tx);
            let mut outstanding = avail.clone();
            while !outstanding.is_empty() {
                let Ok((idx, report)) = rx.recv() else { break };
                outstanding.retain(|&i| i != idx);
                self.stats.bytes_sent += report.lost.bytes_sent;
                self.stats.bytes_received += report.lost.bytes_received;
                let leg = &mut self.legs[idx];
                let party = leg.party;
                leg.transport = Some(report.transport);
                match report.outcome {
                    Ok((d, m)) => {
                        live.push((party, d, m));
                        ok_legs.push(idx);
                    }
                    Err(e) => failed.push((idx, e)),
                }
            }
            for idx in outstanding {
                self.legs[idx].quarantine_integrity(
                    &mut self.stats,
                    "fleet leg panicked during a write".into(),
                );
            }
        } else {
            for &idx in &avail {
                let leg = &mut self.legs[idx];
                let transport = leg.transport.take().expect("leg checked live");
                let dial = leg.dial.clone();
                let seed = leg_seed(leg.party);
                let (df, mf) = &frames[idx];
                let report =
                    exchange_with_retry(transport, df, Some(mf), &cfg, dial.as_ref(), seed);
                self.stats.bytes_sent += report.lost.bytes_sent;
                self.stats.bytes_received += report.lost.bytes_received;
                let leg = &mut self.legs[idx];
                let party = leg.party;
                leg.transport = Some(report.transport);
                match report.outcome {
                    Ok((d, m)) => {
                        live.push((party, d, m));
                        ok_legs.push(idx);
                    }
                    Err(e) => failed.push((idx, e)),
                }
            }
        }

        // A leg that failed a write frame may have applied half of it;
        // like an absent party, it is divergent and retired for good.
        for (idx, e) in failed {
            self.legs[idx].quarantine_integrity(&mut self.stats, format!("write failed: {e}"));
        }
        // Both planes of one party must acknowledge identically.
        let mut parts: Vec<(usize, &Response)> = Vec::new();
        for (party, d, m) in &live {
            match m {
                Some(m) if m == d => parts.push((*party, d)),
                _ => {
                    let detail = format!(
                        "party {party} acknowledged a write differently on its data and MAC planes"
                    );
                    for leg in self.legs.iter_mut() {
                        if leg.party == *party {
                            leg.quarantine_integrity(
                                &mut self.stats,
                                format!("quarantined: {detail}"),
                            );
                        }
                    }
                }
            }
        }
        if parts.len() < self.threshold {
            let faults: Vec<String> = self
                .legs
                .iter()
                .filter_map(|l| {
                    l.fault
                        .as_ref()
                        .map(|f| format!("party {} at {}: {f}", l.party, l.addr))
                })
                .collect();
            return Err(CoreError::Transport(format!(
                "fleet quorum lost on a write: {} of {} parties applied it, threshold {} ({})",
                parts.len(),
                self.legs.len(),
                self.threshold,
                faults.join("; ")
            )));
        }
        match self.structural_majority(&parts) {
            Ok(resp) => {
                for idx in ok_legs {
                    if self.legs[idx].health != PartyHealth::Quarantined {
                        self.legs[idx].note_success();
                    }
                }
                Ok(resp)
            }
            Err(FleetError::Blamed { parties, detail }) => {
                for leg in self.legs.iter_mut() {
                    if parties.contains(&leg.party) {
                        leg.quarantine_integrity(&mut self.stats, format!("quarantined: {detail}"));
                    }
                }
                Err(CoreError::Corrupt(format!(
                    "fleet integrity failure: {detail}"
                )))
            }
            Err(FleetError::Fatal(detail)) => Err(CoreError::Corrupt(format!(
                "fleet integrity failure: {detail}"
            ))),
        }
    }
}

impl<T: Transport + Send + 'static> Transport for FleetTransport<T> {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        self.stats.round_trips += 1;
        self.harvest_stragglers(false);
        self.tick_readmission();
        let dshard = match req {
            Request::ToShard { shard, .. } => *shard,
            _ => self.shard,
        };
        let inner: &Request = match req {
            Request::ToShard { req, .. } => req,
            other => other,
        };
        if matches!(inner, Request::Insert { .. } | Request::Delete { .. }) {
            // Writes wait for every hedged straggler first: a leg whose
            // transport is still out with an old read must take the write
            // too, or its party silently misses it.
            self.harvest_stragglers(true);
            return self.write_wave(dshard, inner);
        }
        let (mirror, plan) = mirror_of(inner);
        let mirror_frame = mirror.map(|m| Request::ToShard {
            shard: self.data_shards + dshard,
            req: Box::new(m),
        });

        let avail: Vec<usize> = self
            .legs
            .iter()
            .enumerate()
            .filter(|(_, l)| l.transport.is_some())
            .map(|(i, _)| i)
            .collect();
        let cfg = self.config;
        let base = cfg.cooldown_waves;
        let wave = self.stats.round_trips;
        let leg_seed = |party: usize| cfg.jitter_seed ^ ((party as u64) << 32) ^ wave;

        // `live` holds (party, data, mac) for combine_wave; `ok_legs` the
        // matching leg indices so health can be credited afterwards.
        let mut live: Vec<(usize, Response, Option<Response>)> = Vec::new();
        let mut ok_legs: Vec<usize> = Vec::new();
        let mut failed: Vec<(usize, CoreError)> = Vec::new();

        if (self.concurrent || cfg.hedge) && avail.len() > 1 {
            // One detached worker per leg; transports travel to the worker
            // and come back through the channel, so a hedged wave can
            // return while stragglers are still out.
            let (tx, rx) = mpsc::channel::<(usize, LegReport<T>)>();
            let data = Arc::new(req.clone());
            let mirror = mirror_frame.map(Arc::new);
            for &idx in &avail {
                let leg = &mut self.legs[idx];
                let transport = leg.transport.take().expect("leg checked live");
                let dial = leg.dial.clone();
                let seed = leg_seed(leg.party);
                let tx = tx.clone();
                let data = Arc::clone(&data);
                let mirror = mirror.clone();
                std::thread::spawn(move || {
                    let report = exchange_with_retry(
                        transport,
                        &data,
                        mirror.as_deref(),
                        &cfg,
                        dial.as_ref(),
                        seed,
                    );
                    let _ = tx.send((idx, report));
                });
            }
            drop(tx);
            let mut outstanding = avail.clone();
            let mut hedged: Option<Response> = None;
            while !outstanding.is_empty() {
                let Ok((idx, report)) = rx.recv() else { break };
                outstanding.retain(|&i| i != idx);
                self.stats.bytes_sent += report.lost.bytes_sent;
                self.stats.bytes_received += report.lost.bytes_received;
                let leg = &mut self.legs[idx];
                let party = leg.party;
                leg.transport = Some(report.transport);
                match report.outcome {
                    Ok((d, m)) => {
                        live.push((party, d, m));
                        ok_legs.push(idx);
                    }
                    Err(e) => failed.push((idx, e)),
                }
                // t-first: with hedging on, try to answer the wave as soon
                // as a verifiable t-quorum is in. A combination that does
                // not yet verify (e.g. a corrupt share among the first t)
                // simply keeps waiting for more responders.
                if cfg.hedge && !outstanding.is_empty() && live.len() >= self.threshold {
                    if let Ok(resp) = self.combine_wave(&live, &plan) {
                        hedged = Some(resp);
                        break;
                    }
                }
            }
            if let Some(resp) = hedged {
                self.stats.hedged_wins += 1;
                self.pending.push(PendingWave {
                    rx,
                    outstanding,
                    done: Instant::now(),
                });
                for (idx, e) in failed {
                    self.legs[idx].strike(&mut self.stats, base, e.to_string());
                }
                for idx in ok_legs {
                    self.legs[idx].note_success();
                }
                return Ok(resp);
            }
            // The channel disconnected early only if workers panicked.
            for idx in outstanding {
                self.legs[idx].strike(&mut self.stats, base, "fleet leg panicked".into());
            }
        } else {
            for &idx in &avail {
                let leg = &mut self.legs[idx];
                let transport = leg.transport.take().expect("leg checked live");
                let dial = leg.dial.clone();
                let seed = leg_seed(leg.party);
                let report = exchange_with_retry(
                    transport,
                    req,
                    mirror_frame.as_ref(),
                    &cfg,
                    dial.as_ref(),
                    seed,
                );
                self.stats.bytes_sent += report.lost.bytes_sent;
                self.stats.bytes_received += report.lost.bytes_received;
                let leg = &mut self.legs[idx];
                let party = leg.party;
                leg.transport = Some(report.transport);
                match report.outcome {
                    Ok((d, m)) => {
                        live.push((party, d, m));
                        ok_legs.push(idx);
                    }
                    Err(e) => failed.push((idx, e)),
                }
            }
        }

        for (idx, e) in failed {
            self.legs[idx].strike(&mut self.stats, base, e.to_string());
        }
        if live.len() < self.threshold {
            let faults: Vec<String> = self
                .legs
                .iter()
                .filter_map(|l| {
                    l.fault
                        .as_ref()
                        .map(|f| format!("party {} at {}: {f}", l.party, l.addr))
                })
                .collect();
            return Err(CoreError::Transport(format!(
                "fleet quorum lost: {} of {} parties answering, threshold {} ({})",
                live.len(),
                self.legs.len(),
                self.threshold,
                faults.join("; ")
            )));
        }
        match self.combine_wave(&live, &plan) {
            Ok(resp) => {
                for idx in ok_legs {
                    self.legs[idx].note_success();
                }
                Ok(resp)
            }
            Err(FleetError::Blamed { parties, detail }) => {
                for leg in self.legs.iter_mut() {
                    if parties.contains(&leg.party) {
                        leg.quarantine_integrity(&mut self.stats, format!("quarantined: {detail}"));
                    }
                }
                Err(CoreError::Corrupt(format!(
                    "fleet integrity failure: {detail}"
                )))
            }
            Err(FleetError::Fatal(detail)) => Err(CoreError::Corrupt(format!(
                "fleet integrity failure: {detail}"
            ))),
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.stats;
        for leg in &self.legs {
            if let Some(t) = &leg.transport {
                let u = t.stats();
                s.bytes_sent += u.bytes_sent;
                s.bytes_received += u.bytes_received;
            }
        }
        s
    }

    fn set_call_budget(&mut self, budget: Option<Duration>) {
        self.config.deadline = budget;
        for leg in self.legs.iter_mut() {
            if let Some(t) = leg.transport.as_mut() {
                t.set_call_budget(budget);
            }
        }
    }
}

/// Builds the full in-process fleet stack from a fleet encoding: one
/// shared party host per party, `data_shards` fleet pipes, and the usual
/// [`ShardRouter`] on top. The `n = 1, t = 1` case routes the exact same
/// waves as the single-party [`ShardRouter::local`] deployment.
pub fn local_fleet_router(
    fleet: FleetEncodeOutput,
    seed: &Seed,
    data_shards: u32,
) -> Result<ShardRouter<FleetTransport<LocalPartyTransport>>, CoreError> {
    local_fleet_router_wrapped(fleet, seed, data_shards, |_, t| t)
}

/// Like [`local_fleet_router`] but passes every leg transport through
/// `wrap(party, transport)` first — the hook the chaos plane and the
/// degraded-mode bench use to interpose [`crate::chaos::ChaosTransport`]
/// on individual parties.
pub fn local_fleet_router_wrapped<T, F>(
    fleet: FleetEncodeOutput,
    seed: &Seed,
    data_shards: u32,
    mut wrap: F,
) -> Result<ShardRouter<FleetTransport<T>>, CoreError>
where
    T: Transport + Send + 'static,
    F: FnMut(usize, LocalPartyTransport) -> T,
{
    let FleetEncodeOutput {
        parties,
        spec,
        ring,
        packer,
        ..
    } = fleet;
    let alpha = fleet_mac_key(seed, &ring);
    let hosts = parties
        .into_iter()
        .map(|p| {
            party_server(p.data, p.mac, &ring, data_shards)
                .map(Mutex::new)
                .map(Arc::new)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sspec = ShardSpec::new(data_shards);
    let pipes: Vec<FleetTransport<T>> = (0..sspec.shards())
        .map(|k| {
            let legs = hosts
                .iter()
                .enumerate()
                .map(|(j, h)| {
                    FleetLeg::up(j + 1, wrap(j + 1, LocalPartyTransport::new(Arc::clone(h))))
                })
                .collect();
            let mut pipe = FleetTransport::new(
                legs,
                spec.threshold,
                sspec.shards(),
                k,
                ring.clone(),
                packer.clone(),
                alpha,
                false,
            );
            pipe.set_split_seed(seed.clone());
            pipe
        })
        .collect();
    Ok(ShardRouter::new(sspec, pipes, sspec.shards() > 1, false))
}

/// Per-party probe outcome during a fleet connect.
struct Probe<T> {
    transport: Option<T>,
    host_shards: Option<u32>,
    fault: Option<String>,
}

/// Asks one connected endpoint how many shards it serves.
fn probe_shard_count<T: Transport>(t: &mut T) -> Result<u32, String> {
    match t.call(&Request::ShardCount) {
        Ok(Response::Count(c)) if c >= 2 && c % 2 == 0 && c <= u32::MAX as u64 => Ok(c as u32),
        Ok(Response::Count(c)) => Err(format!(
            "endpoint serves {c} shards; a fleet party serves an even count (S data + S MAC)"
        )),
        Ok(other) => Err(format!("unexpected handshake answer: {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

/// Resolves the host shard count the live probes agree on, requiring at
/// least `threshold` live parties. Probes that disagree with the first
/// live answer are faulted in place.
fn fleet_consensus<T>(probes: &mut [Probe<T>], threshold: usize) -> Result<u32, CoreError> {
    let mut agreed: Option<u32> = None;
    for p in probes.iter_mut() {
        if let Some(c) = p.host_shards {
            match agreed {
                None => agreed = Some(c),
                Some(a) if a != c => {
                    p.fault = Some(format!("shard count mismatch: {c} vs fleet's {a}"));
                    p.transport = None;
                    p.host_shards = None;
                }
                _ => {}
            }
        }
    }
    let live = probes.iter().filter(|p| p.transport.is_some()).count();
    let Some(total) = agreed else {
        let faults: Vec<String> = probes
            .iter()
            .enumerate()
            .filter_map(|(j, p)| p.fault.as_ref().map(|f| format!("party {}: {f}", j + 1)))
            .collect();
        return Err(CoreError::Transport(format!(
            "no fleet party reachable ({})",
            faults.join("; ")
        )));
    };
    if live < threshold {
        let faults: Vec<String> = probes
            .iter()
            .enumerate()
            .filter_map(|(j, p)| p.fault.as_ref().map(|f| format!("party {}: {f}", j + 1)))
            .collect();
        return Err(CoreError::Transport(format!(
            "fleet quorum unreachable at connect: {live} live, threshold {threshold} ({})",
            faults.join("; ")
        )));
    }
    Ok(total)
}

/// Connects to an `n`-party fleet over plain framed TCP
/// ([`crate::transport::serve_tcp_sharded`] hosts), one connection per
/// party per data shard. Parties dead at connect are tolerated down to
/// `threshold` live legs.
pub fn connect_fleet(
    addrs: &[String],
    threshold: usize,
    map: &MapFile,
    seed: &Seed,
) -> Result<ShardRouter<FleetTransport<TcpTransport>>, CoreError> {
    FleetSpec::new(addrs.len(), threshold)?;
    let ring = RingCtx::new(map.p(), map.e())?;
    let packer = Packer::new(&ring);
    let alpha = fleet_mac_key(seed, &ring);
    let mut probes: Vec<Probe<TcpTransport>> = addrs
        .iter()
        .map(|addr| match TcpTransport::connect(addr.as_str()) {
            Ok(mut t) => match probe_shard_count(&mut t) {
                Ok(c) => Probe {
                    transport: Some(t),
                    host_shards: Some(c),
                    fault: None,
                },
                Err(f) => Probe {
                    transport: None,
                    host_shards: None,
                    fault: Some(f),
                },
            },
            Err(e) => Probe {
                transport: None,
                host_shards: None,
                fault: Some(e.to_string()),
            },
        })
        .collect();
    let total = fleet_consensus(&mut probes, threshold)?;
    let data_shards = total / 2;
    let sspec = ShardSpec::new(data_shards);
    let pipes = (0..sspec.shards())
        .map(|k| {
            let legs = probes
                .iter_mut()
                .enumerate()
                .map(|(j, probe)| {
                    let party = j + 1;
                    let addr = addrs[j].clone();
                    let dial: Dialer<TcpTransport> = {
                        let addr = addr.clone();
                        Arc::new(move |budget| TcpTransport::connect_within(addr.as_str(), budget))
                    };
                    let leg = match &probe.fault {
                        Some(f) => FleetLeg::down(party, f.clone()),
                        None => {
                            // Reuse the probe connection for pipe 0; open a
                            // fresh one per further pipe.
                            let conn = if k == 0 {
                                probe.transport.take().ok_or_else(|| {
                                    CoreError::Transport("probe connection missing".into())
                                })
                            } else {
                                TcpTransport::connect(addrs[j].as_str())
                            };
                            match conn {
                                Ok(t) => FleetLeg::up(party, t),
                                Err(e) => FleetLeg::down(party, e.to_string()),
                            }
                        }
                    };
                    leg.at(&addr).with_dialer(dial)
                })
                .collect();
            let mut pipe = FleetTransport::new(
                legs,
                threshold,
                sspec.shards(),
                k,
                ring.clone(),
                packer.clone(),
                alpha,
                true,
            );
            pipe.set_split_seed(seed.clone());
            pipe
        })
        .collect();
    Ok(ShardRouter::new(sspec, pipes, sspec.shards() > 1, true))
}

/// Connects to an `n`-party fleet of multiplexed hosts
/// ([`crate::transport::serve_tcp_mux`]): one [`MuxPool`] per party, the
/// data-shard connections of which become the fleet legs. Parties dead at
/// connect are tolerated down to `threshold` live legs.
pub fn connect_fleet_mux(
    addrs: &[String],
    threshold: usize,
    map: &MapFile,
    seed: &Seed,
) -> Result<ShardRouter<FleetTransport<MuxTransport>>, CoreError> {
    FleetSpec::new(addrs.len(), threshold)?;
    let ring = RingCtx::new(map.p(), map.e())?;
    let packer = Packer::new(&ring);
    let alpha = fleet_mac_key(seed, &ring);
    // A mux host still answers the legacy-framed handshake, so probe with a
    // plain connection before opening the pool with the right shard count.
    let mut probes: Vec<Probe<MuxPool>> = addrs
        .iter()
        .map(|addr| {
            let probed = TcpTransport::connect(addr.as_str())
                .map_err(|e| e.to_string())
                .and_then(|mut t| probe_shard_count(&mut t));
            match probed {
                Ok(c) => Probe {
                    // Pool is opened after consensus; hold the count only.
                    transport: None,
                    host_shards: Some(c),
                    fault: None,
                },
                Err(f) => Probe {
                    transport: None,
                    host_shards: None,
                    fault: Some(f),
                },
            }
        })
        .collect();
    // `fleet_consensus` counts live probes by `transport`; for the mux path
    // liveness is carried by `host_shards` instead, so check it directly.
    let mut agreed: Option<u32> = None;
    for p in probes.iter_mut() {
        if let Some(c) = p.host_shards {
            match agreed {
                None => agreed = Some(c),
                Some(a) if a != c => {
                    p.fault = Some(format!("shard count mismatch: {c} vs fleet's {a}"));
                    p.host_shards = None;
                }
                _ => {}
            }
        }
    }
    let live = probes.iter().filter(|p| p.host_shards.is_some()).count();
    let Some(total) = agreed else {
        let faults: Vec<String> = probes
            .iter()
            .enumerate()
            .filter_map(|(j, p)| p.fault.as_ref().map(|f| format!("party {}: {f}", j + 1)))
            .collect();
        return Err(CoreError::Transport(format!(
            "no fleet party reachable ({})",
            faults.join("; ")
        )));
    };
    if live < threshold {
        return Err(CoreError::Transport(format!(
            "fleet quorum unreachable at connect: {live} live, threshold {threshold}"
        )));
    }
    let data_shards = total / 2;
    let pools: Vec<Result<MuxPool, String>> = addrs
        .iter()
        .zip(&probes)
        .map(|(addr, p)| match (&p.fault, p.host_shards) {
            (None, Some(_)) => MuxPool::connect(addr.as_str(), total).map_err(|e| e.to_string()),
            (fault, _) => Err(fault.clone().unwrap_or_else(|| "unreachable".into())),
        })
        .collect();
    let live = pools.iter().filter(|p| p.is_ok()).count();
    if live < threshold {
        let faults: Vec<String> = pools
            .iter()
            .enumerate()
            .filter_map(|(j, p)| p.as_ref().err().map(|f| format!("party {}: {f}", j + 1)))
            .collect();
        return Err(CoreError::Transport(format!(
            "fleet quorum unreachable at connect: {live} live, threshold {threshold} ({})",
            faults.join("; ")
        )));
    }
    let sspec = ShardSpec::new(data_shards);
    let pipes = (0..sspec.shards())
        .map(|k| {
            let legs = pools
                .iter()
                .enumerate()
                .map(|(j, pool)| match pool {
                    Ok(pool) => {
                        // The dialer revives the party's pooled socket for
                        // this shard (a no-op while it is healthy), so a
                        // retry or re-admission probe re-dials at most one
                        // connection shared by every rider.
                        let dial: Dialer<MuxTransport> = {
                            let pool = pool.clone();
                            Arc::new(move |_budget| {
                                let t = pool.transport(k);
                                t.revive()?;
                                Ok(t)
                            })
                        };
                        FleetLeg::up(j + 1, pool.transport(k))
                            .at(&addrs[j])
                            .with_dialer(dial)
                    }
                    Err(f) => FleetLeg::down(j + 1, f.clone()).at(&addrs[j]),
                })
                .collect();
            let mut pipe = FleetTransport::new(
                legs,
                threshold,
                sspec.shards(),
                k,
                ring.clone(),
                packer.clone(),
                alpha,
                true,
            );
            pipe.set_split_seed(seed.clone());
            pipe
        })
        .collect();
    Ok(ShardRouter::new(sspec, pipes, sspec.shards() > 1, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_document_fleet, split_fleet};
    use crate::engine::{EngineKind, MatchRule};
    use crate::facade::{EncryptedDb, FleetDb};
    use ssx_store::Row;

    const XML: &str = "<site><a><b/><b/></a><c><a><b/></a></c></site>";

    fn setup() -> (MapFile, Seed) {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        (map, seed)
    }

    fn fleet_db(n: usize, t: usize, shards: u32) -> FleetDb {
        let (map, seed) = setup();
        let spec = FleetSpec::new(n, t).unwrap();
        EncryptedDb::encode_fleet_sharded(XML, map, seed, spec, shards).unwrap()
    }

    #[test]
    fn fleet_results_match_single_party_bit_for_bit() {
        let (map, seed) = setup();
        let queries = [
            ("//b", EngineKind::Simple, MatchRule::Containment),
            ("/site/a/b", EngineKind::Advanced, MatchRule::Containment),
            ("//a/b", EngineKind::Advanced, MatchRule::Equality),
        ];
        for (n, t, shards) in [(1usize, 1usize, 1u32), (3, 1, 1), (3, 2, 1), (3, 2, 2)] {
            let mut single =
                EncryptedDb::encode_sharded(XML, map.clone(), seed.clone(), shards).unwrap();
            let mut fleet = fleet_db(n, t, shards);
            for (q, kind, rule) in queries {
                let a = single.query(q, kind, rule).unwrap();
                let b = fleet.query(q, kind, rule).unwrap();
                assert_eq!(a.result, b.result, "{q} n={n} t={t} S={shards}");
                assert_eq!(
                    a.stats.round_trips, b.stats.round_trips,
                    "waves differ for {q} n={n} t={t} S={shards}"
                );
            }
        }
    }

    #[test]
    fn fleet_speculation_counters_match_single_party() {
        let (map, seed) = setup();
        let mut single = EncryptedDb::encode(XML, map.clone(), seed.clone()).unwrap();
        let mut fleet = fleet_db(3, 2, 1);
        single.set_speculation(true);
        fleet.set_speculation(true);
        let q = ("//a/b", EngineKind::Advanced, MatchRule::Containment);
        let a = single.query(q.0, q.1, q.2).unwrap();
        let b = fleet.query(q.0, q.1, q.2).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.round_trips, b.stats.round_trips);
        assert_eq!(a.stats.speculative_hits, b.stats.speculative_hits);
        assert_eq!(a.stats.speculative_wasted, b.stats.speculative_wasted);
    }

    /// Flips one bit in every polynomial of a party's table.
    fn corrupt_table(table: Table) -> Table {
        let mut out = Table::new(table.poly_len());
        for row in table.into_rows() {
            let mut poly = row.poly.into_vec();
            poly[0] ^= 0x01;
            out.insert(Row {
                loc: row.loc,
                poly: poly.into_boxed_slice(),
            })
            .unwrap();
        }
        out
    }

    #[test]
    fn byzantine_party_is_detected_and_named() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let mut fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        fleet.parties[1].data =
            corrupt_table(std::mem::replace(&mut fleet.parties[1].data, Table::new(0)));
        let mut db = FleetDb::from_fleet_output(fleet, map, seed, 1).unwrap();
        let err = db
            .query("//b", EngineKind::Simple, MatchRule::Containment)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("integrity") && msg.contains("party 2"),
            "expected an integrity error naming party 2, got: {msg}"
        );
        // The culprit is quarantined: the same query now succeeds on the
        // remaining quorum with correct results.
        let (map2, seed2) = setup();
        let mut single = EncryptedDb::encode(XML, map2, seed2).unwrap();
        let want = single
            .query("//b", EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        let got = db
            .query("//b", EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert_eq!(got.result, want.result);
    }

    #[test]
    fn byzantine_mac_plane_is_detected_too() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let mut fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        fleet.parties[2].mac =
            corrupt_table(std::mem::replace(&mut fleet.parties[2].mac, Table::new(0)));
        let mut db = FleetDb::from_fleet_output(fleet, map, seed, 1).unwrap();
        let err = db
            .query("//b", EngineKind::Simple, MatchRule::Containment)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("integrity") && msg.contains("party 3"),
            "expected an integrity error naming party 3, got: {msg}"
        );
    }

    #[test]
    fn corruption_with_exactly_t_responders_is_detected_not_attributed() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(2, 2).unwrap();
        let mut fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        fleet.parties[0].data =
            corrupt_table(std::mem::replace(&mut fleet.parties[0].data, Table::new(0)));
        let mut db = FleetDb::from_fleet_output(fleet, map, seed, 1).unwrap();
        let err = db
            .query("//b", EngineKind::Simple, MatchRule::Containment)
            .unwrap_err();
        assert!(matches!(err, CoreError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("attribute"), "{err}");
    }

    #[test]
    fn split_then_reconstruct_via_any_two_parties_serves_queries() {
        // Drop each party in turn from a 3-of-2 fleet at build time; every
        // 2-party remnant must answer correctly.
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let mut single = EncryptedDb::encode(XML, map.clone(), seed.clone()).unwrap();
        let want = single
            .query("//a/b", EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        for dead in 1..=3usize {
            let out = encode_document_fleet(XML, &map, &seed, spec).unwrap();
            let ring = out.ring.clone();
            let packer = out.packer.clone();
            let alpha = fleet_mac_key(&seed, &ring);
            let legs = out
                .parties
                .into_iter()
                .map(|p| {
                    if p.party == dead {
                        FleetLeg::down(p.party, "dead at connect (test)".into())
                    } else {
                        let host = party_server(p.data, p.mac, &ring, 1)
                            .map(Mutex::new)
                            .map(Arc::new)
                            .unwrap();
                        FleetLeg::up(p.party, LocalPartyTransport::new(host))
                    }
                })
                .collect();
            let pipe = FleetTransport::new(legs, 2, 1, 0, ring.clone(), packer, alpha, false);
            let router = ShardRouter::new(ShardSpec::new(1), vec![pipe], false, false);
            let mut client =
                crate::client::ClientFilter::new(router, map.clone(), seed.clone()).unwrap();
            let got = crate::engine::Engine::run(
                EngineKind::Advanced,
                MatchRule::Equality,
                &ssx_xpath::parse_query("//a/b").unwrap(),
                &mut client,
            )
            .unwrap();
            assert_eq!(got.result, want.result, "party {dead} dead");
        }
    }

    #[test]
    fn quorum_loss_is_a_transport_error() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 3).unwrap();
        let out = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        let ring = out.ring.clone();
        let packer = out.packer.clone();
        let alpha = fleet_mac_key(&seed, &ring);
        let legs = out
            .parties
            .into_iter()
            .map(|p| {
                if p.party == 1 {
                    FleetLeg::down(1, "dead (test)".into())
                } else {
                    let host = party_server(p.data, p.mac, &ring, 1)
                        .map(Mutex::new)
                        .map(Arc::new)
                        .unwrap();
                    FleetLeg::up(p.party, LocalPartyTransport::new(host))
                }
            })
            .collect();
        let mut pipe = FleetTransport::new(legs, 3, 1, 0, ring, packer, alpha, false);
        let err = pipe.call(&Request::Count).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("quorum") && msg.contains("party 1"),
            "expected a quorum error naming party 1, got: {msg}"
        );
    }

    #[test]
    fn t1_fleet_replicas_majority_vote() {
        // n = 3, t = 1: pure replication. All answers agree, queries work and
        // match the single-party deployment exactly.
        let (map, seed) = setup();
        let mut single = EncryptedDb::encode_sharded(XML, map, seed, 2).unwrap();
        let mut db = fleet_db(3, 1, 2);
        let q = ("//b", EngineKind::Simple, MatchRule::Containment);
        let out = db.query(q.0, q.1, q.2).unwrap();
        let reference = single.query(q.0, q.1, q.2).unwrap();
        assert_eq!(out.result, reference.result);
        assert!(!out.result.is_empty());
    }

    /// A pseudo-random but decodable packed polynomial, as a client
    /// would hand the write plane.
    fn poly_bytes(ring: &RingCtx, fill: u64) -> Vec<u8> {
        let q = ring.field().order();
        let mut x = fill | 1;
        let coeffs = (0..ring.len())
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect();
        Packer::new(ring).pack_radix(&ring.poly_from_coeffs(coeffs).unwrap())
    }

    fn root_loc(pre: u32) -> ssx_store::Loc {
        ssx_store::Loc {
            pre,
            post: pre,
            parent: 0,
        }
    }

    fn count_of(resp: Response) -> u64 {
        match resp {
            Response::Count(c) => c,
            other => panic!("expected Count, got {other:?}"),
        }
    }

    #[test]
    fn fleet_insert_reconstructs_bit_identical_and_delete_removes() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        let ring = fleet.ring.clone();
        let mut router = local_fleet_router(fleet, &seed, 1).unwrap();
        let base = count_of(router.call(&Request::Count).unwrap());
        let poly = poly_bytes(&ring, 0xFEED);

        let applied = router
            .call(&Request::Insert {
                rows: vec![(root_loc(100), poly.clone())],
            })
            .unwrap();
        assert_eq!(count_of(applied), 1);
        assert_eq!(count_of(router.call(&Request::Count).unwrap()), base + 1);

        // The fleet re-split the row into per-party shares; reading it
        // back Lagrange-combines them under the MAC check and must
        // reproduce the client's exact bytes.
        match router.call(&Request::GetPolys { pres: vec![100] }).unwrap() {
            Response::Polys(polys) => assert_eq!(polys, vec![poly]),
            other => panic!("expected Polys, got {other:?}"),
        }

        // Delete is idempotent: the missing pre is skipped, the real one
        // removed from both planes of every party.
        let removed = router
            .call(&Request::Delete {
                pres: vec![100, 999],
            })
            .unwrap();
        assert_eq!(count_of(removed), 1);
        assert_eq!(count_of(router.call(&Request::Count).unwrap()), base);
    }

    #[test]
    fn fleet_write_retires_absent_party_permanently() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let out = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        let ring = out.ring.clone();
        let packer = out.packer.clone();
        let alpha = fleet_mac_key(&seed, &ring);
        let legs = out
            .parties
            .into_iter()
            .map(|p| {
                if p.party == 2 {
                    FleetLeg::down(2, "dead at connect (test)".into())
                } else {
                    let host = party_server(p.data, p.mac, &ring, 1)
                        .map(Mutex::new)
                        .map(Arc::new)
                        .unwrap();
                    FleetLeg::up(p.party, LocalPartyTransport::new(host))
                }
            })
            .collect();
        let mut pipe = FleetTransport::new(legs, 2, 1, 0, ring.clone(), packer, alpha, false);
        pipe.set_split_seed(seed.clone());

        let poly = poly_bytes(&ring, 0xBEEF);
        let applied = pipe
            .call(&Request::Insert {
                rows: vec![(root_loc(50), poly.clone())],
            })
            .unwrap();
        assert_eq!(count_of(applied), 1);

        // The absent party missed the write: its state has diverged, so it
        // is retired like a lying party — cooldown never expires.
        let status = pipe.party_status();
        let p2 = status.iter().find(|s| s.party == 2).unwrap();
        assert_eq!(p2.health, PartyHealth::Quarantined);
        assert!(
            p2.fault
                .as_deref()
                .is_some_and(|f| f.contains("missed a write") || f.contains("dead at connect")),
            "unexpected fault: {:?}",
            p2.fault
        );

        // The surviving 2-of-2 quorum still reconstructs the new row.
        match pipe.call(&Request::GetPolys { pres: vec![50] }).unwrap() {
            Response::Polys(polys) => assert_eq!(polys, vec![poly]),
            other => panic!("expected Polys, got {other:?}"),
        }
    }

    #[test]
    fn party_store_split_is_deterministic() {
        let (map, seed) = setup();
        let spec = FleetSpec::new(3, 2).unwrap();
        let a = encode_document_fleet(XML, &map, &seed, spec).unwrap();
        let b = split_fleet(
            crate::encode::encode_document(XML, &map, &seed).unwrap(),
            &seed,
            spec,
        )
        .unwrap();
        for (pa, pb) in a.parties.iter().zip(&b.parties) {
            for row in pa.data.rows() {
                assert_eq!(pb.data.by_pre(row.loc.pre).unwrap().poly, row.poly);
            }
            for row in pa.mac.rows() {
                assert_eq!(pb.mac.by_pre(row.loc.pre).unwrap().poly, row.poly);
            }
        }
    }
}
