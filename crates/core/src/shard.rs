//! The sharded store/server layer.
//!
//! The paper's §5.2 architecture has one big server; related secret-sharing
//! systems scale by partitioning the stored shares across servers and
//! batching the oblivious operations against each partition (OBSCURE;
//! Dolev–Li–Sharma). This module splits the encoded table across `S`
//! independent [`ServerFilter`]s by a deterministic `pre → shard` partition:
//!
//! * **Partition function.** [`ShardSpec::shard_of`] assigns node `pre` to
//!   shard `(pre − 1) mod S` — round-robin in document order, so both
//!   storage and any document-ordered batch of evaluations split evenly
//!   across shards (a contiguous range partition would skew hot subtrees
//!   onto one shard).
//! * **Per-shard state.** Each shard owns its rows, its B-tree indices, its
//!   lazy evaluation-domain cache and its counters; shards never talk to
//!   each other. All cross-shard merging happens in the client-side
//!   [`crate::router::ShardRouter`].
//! * **What a shard learns.** Exactly what the single server learned before,
//!   restricted to its partition: evaluation points and the access pattern
//!   of *its own* rows. No shard sees the whole access pattern — see
//!   DESIGN.md's shard-plane section for the leakage discussion.
//!
//! `children_of`/`descendants_of` remain correct on a partial table: the
//! `(parent, pre)` index keys rows by their parent value whether or not the
//! parent row lives on the same shard, and the pre/post interval property
//! holds row-wise, so each shard returns the document-ordered subset of an
//! answer it stores and a k-way merge by `pre` reconstructs the full answer.

use crate::protocol::{Request, Response};
use crate::server::ServerFilter;
use ssx_poly::RingCtx;
use ssx_store::{StoreError, Table};

/// The deterministic `pre → shard` partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u32,
}

impl ShardSpec {
    /// A spec for `shards ≥ 1` shards (0 is clamped to 1).
    pub fn new(shards: u32) -> Self {
        ShardSpec {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard holding node `pre`: round-robin `(pre − 1) mod S` (`pre`
    /// is 1-based, so the root lands on shard 0).
    #[inline]
    pub fn shard_of(&self, pre: u32) -> u32 {
        pre.wrapping_sub(1) % self.shards
    }
}

/// Splits `table` into one partial table per shard. Every row keeps its
/// original `(pre, post, parent)` triple — locations are global, only
/// placement changes — and the packed polynomial bytes move without being
/// re-encoded, so the storage format stays bit-identical per row.
pub fn partition_table(table: Table, spec: ShardSpec) -> Result<Vec<Table>, StoreError> {
    let poly_len = table.poly_len();
    let mut shards: Vec<Table> = (0..spec.shards()).map(|_| Table::new(poly_len)).collect();
    for row in table.into_rows() {
        shards[spec.shard_of(row.loc.pre) as usize].insert(row)?;
    }
    Ok(shards)
}

/// `S` independent server filters over one logical document — the unit a
/// concurrent TCP host serves and the local facade wires a router onto.
pub struct ShardedServer {
    spec: ShardSpec,
    filters: Vec<ServerFilter>,
}

impl ShardedServer {
    /// Partitions `table` and builds one [`ServerFilter`] per shard (each
    /// with its own eval cache and stats). `shards = 1` reproduces the
    /// monolithic server exactly.
    pub fn from_table(table: Table, ring: RingCtx, shards: u32) -> Result<Self, StoreError> {
        let spec = ShardSpec::new(shards);
        let filters = partition_table(table, spec)?
            .into_iter()
            .map(|t| ServerFilter::new(t, ring.clone()))
            .collect();
        Ok(ShardedServer { spec, filters })
    }

    /// Wraps pre-built filters (testing, custom partitions). The filters
    /// must follow `spec`'s placement for router merges to be correct.
    pub fn from_filters(spec: ShardSpec, filters: Vec<ServerFilter>) -> Self {
        assert_eq!(spec.shards() as usize, filters.len());
        ShardedServer { spec, filters }
    }

    /// The partition spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Per-shard filters (read access: stats, table sizes).
    pub fn filters(&self) -> &[ServerFilter] {
        &self.filters
    }

    /// Consumes the server, yielding the per-shard filters (used to wire
    /// one local transport per shard).
    pub fn into_filters(self) -> Vec<ServerFilter> {
        self.filters
    }

    /// Repartitions the fleet across `shards` filters **in memory** — the
    /// online alternative to the save/load cycle. Every row moves to its
    /// new `(pre − 1) mod S'` home with its packed polynomial bytes
    /// untouched (the partition only decides placement), so `S → S' → S`
    /// round trips are bit-identical row-for-row. Derived per-shard state
    /// (eval caches, counters, any open cursors) is dropped with the old
    /// filters: caches rebuild lazily, and an invalidated cursor surfaces
    /// as an explicit `no cursor` error on its next use — never a wrong
    /// answer. `S' = S` still rebuilds (a cheap no-op placement-wise).
    ///
    /// Failure is **non-destructive**: the fleet is validated *before*
    /// anything moves (a hand-built [`ShardedServer::from_filters`] fleet
    /// may hold rows that cannot coexist in one partition — duplicate
    /// `pre`/`post` across shards, mismatched polynomial lengths), and a
    /// rejected reshard hands the untouched server back with the error, so
    /// a live host never loses rows to a bad request.
    pub fn reshard(self, shards: u32) -> Result<Self, (Self, StoreError)> {
        if let Err(e) = self.validate_movable() {
            return Err((self, e));
        }
        let spec = ShardSpec::new(shards);
        let ring = self.filters[0].ring().clone();
        let poly_len = self.filters[0].table().poly_len();
        let mut tables: Vec<Table> = (0..spec.shards()).map(|_| Table::new(poly_len)).collect();
        for filter in self.filters {
            for row in filter.into_table().into_rows() {
                tables[spec.shard_of(row.loc.pre) as usize]
                    .insert(row)
                    .expect("validated row set repartitions without conflicts");
            }
        }
        let filters = tables
            .into_iter()
            .map(|t| ServerFilter::new(t, ring.clone()))
            .collect();
        Ok(ShardedServer { spec, filters })
    }

    /// Checks that every row of the fleet can be re-inserted under *any*
    /// placement: one polynomial length fleet-wide and globally unique
    /// `pre`/`post` (per-row sanity — `pre ≥ 1`, `parent < pre` — held at
    /// original insert time). [`Table::insert`] can fail on nothing else,
    /// so a fleet passing this check repartitions infallibly.
    fn validate_movable(&self) -> Result<(), StoreError> {
        let poly_len = self.filters[0].table().poly_len();
        let mut pres = std::collections::HashSet::new();
        let mut posts = std::collections::HashSet::new();
        for filter in &self.filters {
            let table = filter.table();
            if table.poly_len() != poly_len {
                return Err(StoreError::WrongPolyLen {
                    expected: poly_len,
                    got: table.poly_len(),
                });
            }
            for row in table.rows() {
                if !pres.insert(row.loc.pre) {
                    return Err(StoreError::BadRow(format!(
                        "pre {} stored on more than one shard",
                        row.loc.pre
                    )));
                }
                if !posts.insert(row.loc.post) {
                    return Err(StoreError::BadRow(format!(
                        "post {} stored on more than one shard",
                        row.loc.post
                    )));
                }
            }
        }
        Ok(())
    }

    /// Handles one request addressed to `shard`. Out-of-range shards get a
    /// protocol error, not a panic — the index arrives from the network.
    pub fn handle(&mut self, shard: u32, req: &Request) -> Response {
        match self.filters.get_mut(shard as usize) {
            Some(f) => f.handle(req),
            None => Response::Err(format!(
                "no shard {shard} (server has {})",
                self.spec.shards()
            )),
        }
    }

    /// Total rows across shards.
    pub fn total_rows(&self) -> usize {
        self.filters.iter().map(|f| f.table().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;
    use ssx_store::Loc;

    fn encoded() -> (Table, RingCtx) {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(5);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        (out.table, out.ring)
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let spec = ShardSpec::new(4);
        for pre in 1..100u32 {
            assert_eq!(spec.shard_of(pre), (pre - 1) % 4);
            assert!(spec.shard_of(pre) < spec.shards());
        }
        // Zero shards clamps instead of dividing by zero.
        assert_eq!(ShardSpec::new(0).shards(), 1);
    }

    #[test]
    fn partitioned_tables_cover_all_rows_disjointly() {
        let (table, _) = encoded();
        let total = table.len();
        let all: Vec<Loc> = table.all_locs();
        let spec = ShardSpec::new(3);
        let shards = partition_table(table, spec).unwrap();
        assert_eq!(shards.iter().map(|t| t.len()).sum::<usize>(), total);
        for loc in all {
            let hits = shards
                .iter()
                .filter(|t| t.by_pre(loc.pre).is_some())
                .count();
            assert_eq!(hits, 1, "pre={} must live on exactly one shard", loc.pre);
            assert!(shards[spec.shard_of(loc.pre) as usize]
                .by_pre(loc.pre)
                .is_some());
        }
    }

    #[test]
    fn shard_local_answers_merge_to_the_full_answer() {
        let (table, _) = encoded();
        let root = table.root().unwrap().loc;
        let children = table.children_of(root.pre);
        let descendants = table.descendants_of(root);
        let shards = partition_table(table, ShardSpec::new(3)).unwrap();
        // Exactly one shard holds the root.
        assert_eq!(shards.iter().filter(|t| t.root().is_some()).count(), 1);
        // Children/descendants: concat the per-shard document-ordered
        // subsets, sort by pre — must equal the unsharded answer.
        let mut merged_children: Vec<Loc> = shards
            .iter()
            .flat_map(|t| t.children_of(root.pre))
            .collect();
        merged_children.sort_by_key(|l| l.pre);
        assert_eq!(merged_children, children);
        let mut merged_desc: Vec<Loc> =
            shards.iter().flat_map(|t| t.descendants_of(root)).collect();
        merged_desc.sort_by_key(|l| l.pre);
        assert_eq!(merged_desc, descendants);
    }

    #[test]
    fn reshard_moves_every_row_bit_identically() {
        let (table, ring) = encoded();
        let originals: Vec<(u32, Vec<u8>)> = table
            .rows()
            .iter()
            .map(|r| (r.loc.pre, r.poly.to_vec()))
            .collect();
        let mut server = ShardedServer::from_table(table, ring, 1).unwrap();
        for shards in [3u32, 1, 4, 2, 1] {
            server = server.reshard(shards).map_err(|(_, e)| e).unwrap();
            assert_eq!(server.spec().shards(), shards);
            assert_eq!(server.total_rows(), originals.len());
            for (pre, poly) in &originals {
                let home = server.spec().shard_of(*pre) as usize;
                let row = server.filters()[home]
                    .table()
                    .by_pre(*pre)
                    .unwrap_or_else(|| panic!("pre={pre} missing after S={shards}"));
                assert_eq!(&row.poly.to_vec(), poly, "pre={pre} bytes moved intact");
                // …and on no other shard.
                let hits = server
                    .filters()
                    .iter()
                    .filter(|f| f.table().by_pre(*pre).is_some())
                    .count();
                assert_eq!(hits, 1);
            }
        }
    }

    /// The reshard-path staleness proof: a warmed eval cache must die with
    /// the old filters. After a reshard moves `pre` to a different shard
    /// and the row is reborn there with different share bytes, evaluation
    /// must answer from the new bytes — bit-identical to a cold server
    /// over the same final tables, never from a pre-reshard cached decode.
    #[test]
    fn eval_cache_does_not_survive_a_reshard() {
        let (table, ring) = encoded();
        let donor = table.rows()[1].poly.to_vec();
        let victim = table.rows()[3].clone();
        let pre = victim.loc.pre;
        let mut server = ShardedServer::from_table(table, ring.clone(), 2).unwrap();
        let home = server.spec().shard_of(pre);
        // Warm the cache: second eval of the same row is a hit.
        for _ in 0..2 {
            match server.handle(home, &Request::Eval { pre, point: 3 }) {
                Response::Value(_) => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(server.filters()[home as usize].stats().eval_cache_hits, 1);
        // Move every row: 2 → 3 shards re-homes this pre.
        server = server.reshard(3).map_err(|(_, e)| e).unwrap();
        let rehomed = server.spec().shard_of(pre);
        // Rebirth the pre on the new fleet with a different (valid) share.
        assert_eq!(
            server.handle(rehomed, &Request::Delete { pres: vec![pre] }),
            Response::Count(1)
        );
        assert_eq!(
            server.handle(
                rehomed,
                &Request::Insert {
                    rows: vec![(victim.loc, donor.clone())]
                }
            ),
            Response::Count(1)
        );
        let got = match server.handle(rehomed, &Request::Eval { pre, point: 3 }) {
            Response::Value(v) => v,
            other => panic!("{other:?}"),
        };
        // No hit carried across the reshard, and the answer matches a cold
        // server rebuilt from the final per-shard tables.
        assert_eq!(
            server.filters()[rehomed as usize].stats().eval_cache_hits,
            0
        );
        let final_table = server.filters()[rehomed as usize].table().clone();
        let mut cold = ServerFilter::new(final_table, ring);
        let want = match cold.handle(&Request::Eval { pre, point: 3 }) {
            Response::Value(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(got, want, "stale eval cache survived the reshard");
    }

    #[test]
    fn reshard_zero_clamps_to_one() {
        let (table, ring) = encoded();
        let server = ShardedServer::from_table(table, ring, 2).unwrap();
        let server = server.reshard(0).map_err(|(_, e)| e).unwrap();
        assert_eq!(server.spec().shards(), 1);
    }

    /// A hand-built fleet whose rows cannot coexist in one partition (the
    /// same `pre` on two shards) must be *refused* — and handed back whole,
    /// not consumed: a live host never loses rows to a bad reshard request.
    #[test]
    fn reshard_failure_is_non_destructive() {
        let (table, ring) = encoded();
        let rows = table.len();
        let filters = partition_table(table, ShardSpec::new(2))
            .unwrap()
            .into_iter()
            .map(|t| ServerFilter::new(t, ring.clone()))
            .collect::<Vec<_>>();
        // Duplicate one shard's table onto both shards: every pre now lives
        // twice across the fleet.
        let dup = {
            let t0 = filters[0].table();
            let mut copy = Table::new(t0.poly_len());
            for row in t0.rows() {
                copy.insert(row.clone()).unwrap();
            }
            ServerFilter::new(copy, ring.clone())
        };
        let broken = ShardedServer::from_filters(
            ShardSpec::new(2),
            vec![dup, filters.into_iter().next().unwrap()],
        );
        let before = broken.total_rows();
        assert!(before < 2 * rows && before > 0);
        let (returned, err) = match broken.reshard(1) {
            Err(t) => t,
            Ok(_) => panic!("duplicate pres must refuse"),
        };
        assert!(err.to_string().contains("more than one shard"), "{err}");
        // The fleet came back untouched: same shard count, same rows.
        assert_eq!(returned.spec().shards(), 2);
        assert_eq!(returned.total_rows(), before);
    }

    #[test]
    fn sharded_server_routes_and_rejects_bad_shards() {
        let (table, ring) = encoded();
        let rows = table.len() as u64;
        let mut s = ShardedServer::from_table(table, ring, 2).unwrap();
        assert_eq!(s.spec().shards(), 2);
        assert_eq!(s.total_rows() as u64, rows);
        let (a, b) = match (s.handle(0, &Request::Count), s.handle(1, &Request::Count)) {
            (Response::Count(a), Response::Count(b)) => (a, b),
            other => panic!("{other:?}"),
        };
        assert_eq!(a + b, rows);
        assert!(matches!(s.handle(7, &Request::Count), Response::Err(_)));
        // Per-shard stats are independent.
        assert_eq!(s.filters()[0].stats().requests, 1);
        assert_eq!(s.filters()[1].stats().requests, 1);
    }
}
