//! The sharded store/server layer.
//!
//! The paper's §5.2 architecture has one big server; related secret-sharing
//! systems scale by partitioning the stored shares across servers and
//! batching the oblivious operations against each partition (OBSCURE;
//! Dolev–Li–Sharma). This module splits the encoded table across `S`
//! independent [`ServerFilter`]s by a deterministic `pre → shard` partition:
//!
//! * **Partition function.** [`ShardSpec::shard_of`] assigns node `pre` to
//!   shard `(pre − 1) mod S` — round-robin in document order, so both
//!   storage and any document-ordered batch of evaluations split evenly
//!   across shards (a contiguous range partition would skew hot subtrees
//!   onto one shard).
//! * **Per-shard state.** Each shard owns its rows, its B-tree indices, its
//!   lazy evaluation-domain cache and its counters; shards never talk to
//!   each other. All cross-shard merging happens in the client-side
//!   [`crate::router::ShardRouter`].
//! * **What a shard learns.** Exactly what the single server learned before,
//!   restricted to its partition: evaluation points and the access pattern
//!   of *its own* rows. No shard sees the whole access pattern — see
//!   DESIGN.md's shard-plane section for the leakage discussion.
//!
//! `children_of`/`descendants_of` remain correct on a partial table: the
//! `(parent, pre)` index keys rows by their parent value whether or not the
//! parent row lives on the same shard, and the pre/post interval property
//! holds row-wise, so each shard returns the document-ordered subset of an
//! answer it stores and a k-way merge by `pre` reconstructs the full answer.

use crate::protocol::{Request, Response};
use crate::server::ServerFilter;
use ssx_poly::RingCtx;
use ssx_store::{StoreError, Table};

/// The deterministic `pre → shard` partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u32,
}

impl ShardSpec {
    /// A spec for `shards ≥ 1` shards (0 is clamped to 1).
    pub fn new(shards: u32) -> Self {
        ShardSpec {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard holding node `pre`: round-robin `(pre − 1) mod S` (`pre`
    /// is 1-based, so the root lands on shard 0).
    #[inline]
    pub fn shard_of(&self, pre: u32) -> u32 {
        pre.wrapping_sub(1) % self.shards
    }
}

/// Splits `table` into one partial table per shard. Every row keeps its
/// original `(pre, post, parent)` triple — locations are global, only
/// placement changes — and the packed polynomial bytes move without being
/// re-encoded, so the storage format stays bit-identical per row.
pub fn partition_table(table: Table, spec: ShardSpec) -> Result<Vec<Table>, StoreError> {
    let poly_len = table.poly_len();
    let mut shards: Vec<Table> = (0..spec.shards()).map(|_| Table::new(poly_len)).collect();
    for row in table.into_rows() {
        shards[spec.shard_of(row.loc.pre) as usize].insert(row)?;
    }
    Ok(shards)
}

/// `S` independent server filters over one logical document — the unit a
/// concurrent TCP host serves and the local facade wires a router onto.
pub struct ShardedServer {
    spec: ShardSpec,
    filters: Vec<ServerFilter>,
}

impl ShardedServer {
    /// Partitions `table` and builds one [`ServerFilter`] per shard (each
    /// with its own eval cache and stats). `shards = 1` reproduces the
    /// monolithic server exactly.
    pub fn from_table(table: Table, ring: RingCtx, shards: u32) -> Result<Self, StoreError> {
        let spec = ShardSpec::new(shards);
        let filters = partition_table(table, spec)?
            .into_iter()
            .map(|t| ServerFilter::new(t, ring.clone()))
            .collect();
        Ok(ShardedServer { spec, filters })
    }

    /// Wraps pre-built filters (testing, custom partitions). The filters
    /// must follow `spec`'s placement for router merges to be correct.
    pub fn from_filters(spec: ShardSpec, filters: Vec<ServerFilter>) -> Self {
        assert_eq!(spec.shards() as usize, filters.len());
        ShardedServer { spec, filters }
    }

    /// The partition spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Per-shard filters (read access: stats, table sizes).
    pub fn filters(&self) -> &[ServerFilter] {
        &self.filters
    }

    /// Consumes the server, yielding the per-shard filters (used to wire
    /// one local transport per shard).
    pub fn into_filters(self) -> Vec<ServerFilter> {
        self.filters
    }

    /// Handles one request addressed to `shard`. Out-of-range shards get a
    /// protocol error, not a panic — the index arrives from the network.
    pub fn handle(&mut self, shard: u32, req: &Request) -> Response {
        match self.filters.get_mut(shard as usize) {
            Some(f) => f.handle(req),
            None => Response::Err(format!(
                "no shard {shard} (server has {})",
                self.spec.shards()
            )),
        }
    }

    /// Total rows across shards.
    pub fn total_rows(&self) -> usize {
        self.filters.iter().map(|f| f.table().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;
    use ssx_store::Loc;

    fn encoded() -> (Table, RingCtx) {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(5);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        (out.table, out.ring)
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let spec = ShardSpec::new(4);
        for pre in 1..100u32 {
            assert_eq!(spec.shard_of(pre), (pre - 1) % 4);
            assert!(spec.shard_of(pre) < spec.shards());
        }
        // Zero shards clamps instead of dividing by zero.
        assert_eq!(ShardSpec::new(0).shards(), 1);
    }

    #[test]
    fn partitioned_tables_cover_all_rows_disjointly() {
        let (table, _) = encoded();
        let total = table.len();
        let all: Vec<Loc> = table.all_locs();
        let spec = ShardSpec::new(3);
        let shards = partition_table(table, spec).unwrap();
        assert_eq!(shards.iter().map(|t| t.len()).sum::<usize>(), total);
        for loc in all {
            let hits = shards
                .iter()
                .filter(|t| t.by_pre(loc.pre).is_some())
                .count();
            assert_eq!(hits, 1, "pre={} must live on exactly one shard", loc.pre);
            assert!(shards[spec.shard_of(loc.pre) as usize]
                .by_pre(loc.pre)
                .is_some());
        }
    }

    #[test]
    fn shard_local_answers_merge_to_the_full_answer() {
        let (table, _) = encoded();
        let root = table.root().unwrap().loc;
        let children = table.children_of(root.pre);
        let descendants = table.descendants_of(root);
        let shards = partition_table(table, ShardSpec::new(3)).unwrap();
        // Exactly one shard holds the root.
        assert_eq!(shards.iter().filter(|t| t.root().is_some()).count(), 1);
        // Children/descendants: concat the per-shard document-ordered
        // subsets, sort by pre — must equal the unsharded answer.
        let mut merged_children: Vec<Loc> = shards
            .iter()
            .flat_map(|t| t.children_of(root.pre))
            .collect();
        merged_children.sort_by_key(|l| l.pre);
        assert_eq!(merged_children, children);
        let mut merged_desc: Vec<Loc> =
            shards.iter().flat_map(|t| t.descendants_of(root)).collect();
        merged_desc.sort_by_key(|l| l.pre);
        assert_eq!(merged_desc, descendants);
    }

    #[test]
    fn sharded_server_routes_and_rejects_bad_shards() {
        let (table, ring) = encoded();
        let rows = table.len() as u64;
        let mut s = ShardedServer::from_table(table, ring, 2).unwrap();
        assert_eq!(s.spec().shards(), 2);
        assert_eq!(s.total_rows() as u64, rows);
        let (a, b) = match (s.handle(0, &Request::Count), s.handle(1, &Request::Count)) {
            (Response::Count(a), Response::Count(b)) => (a, b),
            other => panic!("{other:?}"),
        };
        assert_eq!(a + b, rows);
        assert!(matches!(s.handle(7, &Request::Count), Response::Err(_)));
        // Per-shard stats are independent.
        assert_eq!(s.filters()[0].stats().requests, 1);
        assert_eq!(s.filters()[1].stats().requests, 1);
    }
}
