//! Adversarial-input robustness: malformed frames, corrupted rows and
//! hostile servers must surface as errors, never as panics or wrong answers.

use proptest::prelude::*;
use ssx_core::protocol::{decode_request, decode_response, encode_request, Request};
use ssx_core::{encode_document, ClientFilter, LocalTransport, MapFile, ServerFilter};
use ssx_prg::Seed;
use ssx_store::{Loc, Row, Table};

proptest! {
    /// The wire decoders are total: arbitrary bytes decode or error, never
    /// panic, and never allocate absurd amounts.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Valid frames with trailing garbage are rejected.
    #[test]
    fn trailing_garbage_rejected(extra in 1usize..8) {
        let mut frame = encode_request(&Request::Count);
        frame.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(decode_request(&frame).is_err());
    }
}

fn secrets() -> (MapFile, Seed) {
    (
        MapFile::sequential(83, 1, &["site", "a", "b"]).unwrap(),
        Seed::from_test_key(404),
    )
}

#[test]
fn server_reports_corrupt_rows_instead_of_panicking() {
    let (map, seed) = secrets();
    let out = encode_document("<site><a/><b/></site>", &map, &seed).unwrap();
    // Rebuild the table with one row's polynomial bytes set to an invalid
    // radix encoding (all 0xFF decodes to a value >= q^n).
    let mut table = Table::new(out.table.poly_len());
    for (i, row) in out.table.rows().iter().enumerate() {
        let poly = if i == 0 {
            vec![0xFFu8; out.table.poly_len()].into_boxed_slice()
        } else {
            row.poly.clone()
        };
        table.insert(Row { loc: row.loc, poly }).unwrap();
    }
    let corrupt_pre = out.table.rows()[0].loc.pre;
    let mut server = ServerFilter::new(table, out.ring);
    match server.handle(&Request::Eval {
        pre: corrupt_pre,
        point: 5,
    }) {
        ssx_core::protocol::Response::Err(msg) => {
            assert!(msg.contains(&format!("pre={corrupt_pre}")), "{msg}")
        }
        other => panic!("expected an error response, got {other:?}"),
    }
}

#[test]
fn client_surfaces_corrupt_polys_from_equality_test() {
    let (map, seed) = secrets();
    let out = encode_document("<site><a/><b/></site>", &map, &seed).unwrap();
    // Flip a byte inside the root's stored share: reconstruction no longer
    // factors as (x - t) * children, so a verified equality test fails.
    let mut table = Table::new(out.table.poly_len());
    for row in out.table.rows() {
        let mut poly = row.poly.clone();
        if row.loc.pre == 1 {
            poly[7] ^= 0x11;
        }
        table.insert(Row { loc: row.loc, poly }).unwrap();
    }
    let server = ServerFilter::new(table, out.ring);
    let mut client = ClientFilter::new(LocalTransport::new(server), map, seed).unwrap();
    let root = client.root().unwrap().unwrap();
    let vsite = client.value_of("site").unwrap();
    let err = client.equality(root, vsite).unwrap_err();
    assert!(
        matches!(err, ssx_core::CoreError::Corrupt(_)),
        "expected Corrupt, got {err:?}"
    );
}

#[test]
fn unknown_nodes_and_cursors_error_cleanly() {
    let (map, seed) = secrets();
    let out = encode_document("<site/>", &map, &seed).unwrap();
    let server = ServerFilter::new(out.table, out.ring);
    let mut client = ClientFilter::new(LocalTransport::new(server), map, seed).unwrap();
    // Containment on a non-existent node.
    let ghost = Loc {
        pre: 99,
        post: 99,
        parent: 0,
    };
    assert!(client.containment(ghost, 5).is_err());
    // Pulling from a cursor that was never opened.
    assert!(client.next_node(12345).is_err());
    // Structure queries on missing nodes return empty, not errors.
    assert_eq!(client.children(99).unwrap(), vec![]);
    assert_eq!(client.loc_of(99).unwrap(), None);
}

#[test]
fn zero_point_evaluation_is_well_defined_but_useless() {
    // map values are never 0, but a hostile client may ask the server to
    // evaluate at 0; the protocol must answer (with the constant term)
    // rather than crash.
    let (map, seed) = secrets();
    let out = encode_document("<site><a/></site>", &map, &seed).unwrap();
    let mut server = ServerFilter::new(out.table, out.ring);
    match server.handle(&Request::Eval { pre: 1, point: 0 }) {
        ssx_core::protocol::Response::Value(_) => {}
        other => panic!("{other:?}"),
    }
    // Out-of-field points are a client error the server reports.
    match server.handle(&Request::Eval { pre: 1, point: 83 }) {
        ssx_core::protocol::Response::Err(_) | ssx_core::protocol::Response::Value(_) => {}
        other => panic!("{other:?}"),
    }
}
