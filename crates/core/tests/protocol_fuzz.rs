//! The wire decoders are *total*: no byte string — random, truncated,
//! bit-flipped, or length-spliced — may panic or over-allocate. Malformed
//! frames must come back as `Err`, well-formed frames as the value that
//! produced them. This is the fuzz-style hardening suite the speculative /
//! re-sharding plane leans on: every frame a hostile client can send
//! travels through exactly these two entry points.

use proptest::prelude::*;
use ssx_core::protocol::{
    decode_corr_payload, decode_request, decode_response, encode_corr_payload, encode_request,
    encode_response, Request, Response, CORR_BYTES,
};
use ssx_store::Loc;
use std::collections::HashMap;

fn arb_loc() -> impl Strategy<Value = Loc> {
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(pre, post, parent)| Loc {
        pre,
        post,
        parent,
    })
}

/// Every simple (non-compound) request variant with arbitrary payloads.
fn arb_simple_request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Root),
        any::<u32>().prop_map(|pre| Request::GetLoc { pre }),
        any::<u32>().prop_map(|pre| Request::Children { pre }),
        arb_loc().prop_map(|loc| Request::Descendants { loc }),
        (any::<u32>(), any::<u64>()).prop_map(|(pre, point)| Request::Eval { pre, point }),
        (proptest::collection::vec(any::<u32>(), 0..8), any::<u64>())
            .prop_map(|(pres, point)| Request::EvalMany { pres, point }),
        proptest::collection::vec(any::<u32>(), 0..8).prop_map(|pres| Request::GetPolys { pres }),
        proptest::collection::vec(any::<u32>(), 0..8)
            .prop_map(|pres| Request::OpenChildrenCursor { pres }),
        proptest::collection::vec(arb_loc(), 0..6)
            .prop_map(|locs| Request::OpenDescendantsCursor { locs }),
        any::<u32>().prop_map(|cursor| Request::Next { cursor }),
        any::<u32>().prop_map(|cursor| Request::CloseCursor { cursor }),
        Just(Request::Count),
        Just(Request::Shutdown),
        Just(Request::ShardCount),
        any::<u32>().prop_map(|shards| Request::Reshard { shards }),
        any::<u32>().prop_map(|version| Request::Hello { version }),
    ]
    .boxed()
}

/// Simple, batched, or shard-tagged requests (the full legal wire surface).
fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        4 => arb_simple_request(),
        1 => proptest::collection::vec(arb_simple_request(), 0..5)
            .prop_map(Request::Batch),
        1 => (any::<u32>(), arb_simple_request())
            .prop_map(|(shard, req)| Request::ToShard { shard, req: Box::new(req) }),
        1 => (any::<u32>(), proptest::collection::vec(arb_simple_request(), 0..4))
            .prop_map(|(shard, subs)| Request::ToShard {
                shard,
                req: Box::new(Request::Batch(subs)),
            }),
    ]
    .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    let simple = prop_oneof![
        proptest::option::of(arb_loc()).prop_map(Response::MaybeLoc),
        proptest::collection::vec(arb_loc(), 0..6).prop_map(Response::Locs),
        any::<u64>().prop_map(Response::Value),
        proptest::collection::vec(any::<u64>(), 0..8).prop_map(Response::Values),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 0..5)
            .prop_map(Response::Polys),
        any::<u32>().prop_map(Response::Cursor),
        any::<u64>().prop_map(Response::Count),
        Just(Response::Ok),
        proptest::collection::vec(any::<u8>(), 0..12)
            .prop_map(|b| Response::Err(String::from_utf8_lossy(&b).into_owned())),
        (any::<u32>(), any::<u32>())
            .prop_map(|(version, shards)| Response::Hello { version, shards }),
    ]
    .boxed();
    let batch = proptest::collection::vec(simple.clone(), 0..5).prop_map(Response::Batch);
    prop_oneof![4 => simple, 1 => batch].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw random bytes: decoding returns, it never panics or aborts.
    #[test]
    fn decoders_total_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Random bytes behind every known tag byte: exercises each decoder arm
    /// with garbage payloads (pure random bytes rarely pick small tags).
    #[test]
    fn decoders_total_behind_every_tag(
        tag in 0u8..20,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut frame = vec![tag];
        frame.extend_from_slice(&body);
        let _ = decode_request(&frame);
        let _ = decode_response(&frame);
    }

    /// Well-formed frames round-trip exactly.
    #[test]
    fn request_encode_decode_round_trips(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn response_encode_decode_round_trips(resp in arb_response()) {
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    /// Any truncation of a valid frame decodes to an error — never a panic,
    /// never a silently shorter value.
    #[test]
    fn truncated_frames_error_cleanly(req in arb_request(), cut in any::<proptest::sample::Index>()) {
        let bytes = encode_request(&req);
        let keep = cut.index(bytes.len().max(1));
        if keep < bytes.len() {
            prop_assert!(decode_request(&bytes[..keep]).is_err());
        }
    }

    /// Single-byte corruption of a valid frame must decode to an error or to
    /// some other *valid* value — never panic. (A flipped byte inside a
    /// payload legitimately yields a different frame.)
    #[test]
    fn bitflipped_frames_never_panic(
        req in arb_request(),
        at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_request(&req);
        if !bytes.is_empty() {
            let i = at.index(bytes.len());
            bytes[i] ^= xor;
            let _ = decode_request(&bytes);
        }
    }

    /// Splicing an arbitrary u32 over any aligned position (where length
    /// prefixes and counts live) must not panic or over-allocate.
    #[test]
    fn length_spliced_frames_never_panic(
        resp in arb_response(),
        at in any::<proptest::sample::Index>(),
        word in any::<u32>(),
    ) {
        let mut bytes = encode_response(&resp);
        if bytes.len() >= 4 {
            let i = at.index(bytes.len() - 3);
            bytes[i..i + 4].copy_from_slice(&word.to_le_bytes());
            let _ = decode_response(&bytes);
        }
    }

    // ---- correlation envelope (the PR-5 mux framing) ------------------------

    /// The envelope round-trips any id around any frame, and the split is
    /// exact: the id comes back bit-identical and the inner bytes are the
    /// untouched legacy frame.
    #[test]
    fn corr_envelope_round_trips(corr in any::<u64>(), req in arb_request()) {
        let frame = encode_request(&req);
        let payload = encode_corr_payload(corr, &frame);
        let (got, inner) = decode_corr_payload(&payload).unwrap();
        prop_assert_eq!(got, corr);
        prop_assert_eq!(decode_request(inner).unwrap(), req);
    }

    /// The envelope splitter is total on random bytes: short payloads are
    /// typed errors, everything ≥ 8 bytes splits without panicking, and the
    /// returned id is exactly the first 8 little-endian bytes — a garbage
    /// or bit-flipped prefix can only ever name the id it spells out.
    #[test]
    fn corr_decoder_total_and_exact_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        match decode_corr_payload(&bytes) {
            Ok((corr, inner)) => {
                prop_assert!(bytes.len() >= CORR_BYTES);
                prop_assert_eq!(
                    corr,
                    u64::from_le_bytes(bytes[..CORR_BYTES].try_into().unwrap())
                );
                prop_assert_eq!(inner, &bytes[CORR_BYTES..]);
            }
            Err(_) => prop_assert!(bytes.len() < CORR_BYTES),
        }
    }

    /// Truncating a mux payload anywhere inside the id errors; truncating
    /// inside the inner frame yields an error *from the inner decoder* —
    /// never a panic, never a silently different id.
    #[test]
    fn corr_truncations_never_panic(
        corr in any::<u64>(),
        req in arb_request(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let payload = encode_corr_payload(corr, &encode_request(&req));
        let keep = cut.index(payload.len());
        match decode_corr_payload(&payload[..keep]) {
            Ok((got, inner)) => {
                prop_assert_eq!(got, corr, "a truncation cannot change the id");
                prop_assert!(decode_request(inner).is_err(), "truncated inner frame");
            }
            Err(_) => prop_assert!(keep < CORR_BYTES),
        }
    }

    /// The slot-confusion property, end to end over the real envelope: park
    /// distinct completion slots, deliver their responses in arbitrary
    /// order interleaved with garbage and id-corrupted frames, and require
    /// that every slot resolves with exactly its own payload. A frame can
    /// complete slot `c` only by carrying `c`; the parked ids are chosen to
    /// differ in *every* byte (repeat-byte pattern), so a single-byte
    /// corruption of an id provably names no parked slot — corruption may
    /// lose a delivery, never cross two slots.
    #[test]
    fn corrupted_frames_never_complete_the_wrong_slot(
        raw_ids in proptest::collection::btree_set(any::<u8>(), 2..8),
        order in any::<u64>(),
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 0..6),
        flip_at in any::<proptest::sample::Index>(),
        flip_xor in 1u8..=255,
    ) {
        // Distinct bytes fanned across all 8 id bytes: any two parked ids
        // differ everywhere, so no single-byte flip maps one to another.
        let corrs: Vec<u64> = raw_ids
            .into_iter()
            .map(|b| u64::from_le_bytes([b; 8]))
            .collect();
        // Each slot's expected answer is unmistakably its own.
        let frames: Vec<Vec<u8>> = corrs
            .iter()
            .enumerate()
            .map(|(i, &c)| encode_corr_payload(c, &encode_response(&Response::Count(i as u64))))
            .collect();
        let mut pending: HashMap<u64, usize> =
            corrs.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut delivered: Vec<Option<Response>> = vec![None; corrs.len()];

        // Interleave: real frames in a rotated order, garbage in between,
        // plus one copy of a real frame with a corrupted id byte.
        let rot = (order as usize) % frames.len();
        let mut wire: Vec<Vec<u8>> = Vec::new();
        for (k, f) in frames.iter().enumerate() {
            wire.push(frames[(k + rot) % frames.len()].clone());
            if let Some(g) = garbage.get(k) {
                wire.push(g.clone());
            }
            if k == 0 {
                let mut flipped = f.clone();
                let i = flip_at.index(CORR_BYTES);
                flipped[i] ^= flip_xor;
                wire.push(flipped);
            }
        }
        // The client reader's delivery discipline: split, look up, remove.
        for payload in wire {
            let Ok((corr, inner)) = decode_corr_payload(&payload) else {
                continue;
            };
            if let Some(slot) = pending.remove(&corr) {
                if let Ok(resp) = decode_response(inner) {
                    prop_assert!(delivered[slot].is_none(), "double delivery");
                    delivered[slot] = Some(resp);
                }
            }
        }
        for (i, got) in delivered.iter().enumerate() {
            match got {
                Some(resp) => prop_assert_eq!(
                    resp,
                    &Response::Count(i as u64),
                    "slot {} resolved with another slot's payload", i
                ),
                None => prop_assert!(false, "slot {} lost its uncorrupted delivery", i),
            }
        }
    }
}

// ---- zero-copy view differential (the PR-8 borrowed decode) ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The borrowed view decoder is observationally identical to the owned
    /// decoder on *every* input: same acceptances, same values, same
    /// rejections — at every buffer alignment, since whether a `Values`
    /// payload borrows or copies depends on where the frame landed.
    #[test]
    fn view_decoder_matches_owned_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        shift in 0usize..8,
    ) {
        let mut padded = vec![0u8; shift];
        padded.extend_from_slice(&bytes);
        let frame = &padded[shift..];
        let owned = decode_response(frame);
        let view = ssx_core::protocol::decode_response_view(frame);
        match (owned, view) {
            (Ok(o), Ok(v)) => prop_assert_eq!(o, v.into_owned()),
            (Err(_), Err(_)) => {}
            (o, v) => prop_assert!(false, "decoders disagree: owned={o:?} view={v:?}"),
        }
    }

    /// Well-formed frames: the view round-trips to the original response.
    #[test]
    fn view_decoder_round_trips(resp in arb_response(), shift in 0usize..8) {
        let bytes = encode_response(&resp);
        let mut padded = vec![0u8; shift];
        padded.extend_from_slice(&bytes);
        let view = ssx_core::protocol::decode_response_view(&padded[shift..]).unwrap();
        prop_assert_eq!(view.into_owned(), resp);
    }
}
