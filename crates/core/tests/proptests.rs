//! The reproduction's central correctness properties, checked on random
//! documents and random queries:
//!
//! 1. SimpleQuery and AdvancedQuery return identical result sets for a
//!    fixed rule (the paper compares their *costs*, assuming this).
//! 2. Under the equality rule both engines agree with exact plaintext
//!    XPath evaluation (the encryption is transparent).
//! 3. Under the containment rule both engines agree with the plaintext
//!    containment oracle.
//! 4. E ⊆ C (Fig 7's accuracy quotient is well-defined).

use proptest::prelude::*;
use ssx_core::{
    encode_document, reference_eval, AdvancedEngine, ClientFilter, LocalTransport, MapFile,
    MatchRule, ServerFilter, SimpleEngine,
};
use ssx_prg::Seed;
use ssx_xml::Document;
use ssx_xpath::{Axis, NodeTest, Query, Step};

const TAGS: [&str; 5] = ["site", "alpha", "beta", "gamma", "delta"];

/// Random tree rendered as XML: parent-pointer vector + random tags.
fn arb_doc() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(any::<proptest::sample::Index>(), 0..24),
        proptest::collection::vec(0usize..TAGS.len(), 1..25),
    )
        .prop_map(|(parent_choice, tag_choice)| {
            let n = tag_choice.len().min(parent_choice.len() + 1);
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
            for i in 1..n {
                let p = parent_choice[i - 1].index(i);
                children[p].push(i);
            }
            let mut doc = Document::new(TAGS[tag_choice[0]]);
            let mut ids = vec![doc.root()];
            for i in 1..n {
                // Parent id already exists because parents precede children.
                let parent_id = ids[children_parent(&children, i)];
                ids.push(doc.add_element(parent_id, TAGS[tag_choice[i]]));
            }
            doc.to_xml()
        })
}

fn children_parent(children: &[Vec<usize>], node: usize) -> usize {
    children
        .iter()
        .position(|c| c.contains(&node))
        .expect("every non-root node has a parent")
}

fn arb_query() -> impl Strategy<Value = Query> {
    // First step: never `..` (both engines reject that), any later step may
    // climb — this is the regression surface for the look-ahead-vs-parent
    // bug (`suffix_values` must stop at `..`).
    let first = (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            4 => (0usize..TAGS.len()).prop_map(|i| NodeTest::Name(TAGS[i].into())),
            1 => Just(NodeTest::Star),
        ],
    )
        .prop_map(|(axis, test)| Step::new(axis, test));
    let rest = (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            6 => (0usize..TAGS.len()).prop_map(|i| NodeTest::Name(TAGS[i].into())),
            1 => Just(NodeTest::Star),
            1 => Just(NodeTest::Parent),
        ],
    )
        .prop_map(|(axis, test)| {
            // `//..` is unsupported; parent steps always use the child axis.
            let axis = if test == NodeTest::Parent {
                Axis::Child
            } else {
                axis
            };
            Step::new(axis, test)
        });
    (first, proptest::collection::vec(rest, 0..4)).prop_map(|(f, mut r)| {
        let mut steps = vec![f];
        steps.append(&mut r);
        Query::new(steps)
    })
}

fn build_client(xml: &str) -> ClientFilter<LocalTransport> {
    let map = MapFile::sequential(83, 1, &TAGS).unwrap();
    let seed = Seed::from_test_key(0xfeed);
    let out = encode_document(xml, &map, &seed).unwrap();
    let server = ServerFilter::new(out.table, out.ring);
    ClientFilter::new(LocalTransport::new(server), map, seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_match_reference((xml, query) in (arb_doc(), arb_query())) {
        let doc = Document::parse(&xml).unwrap();
        let mut client = build_client(&xml);
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let simple = SimpleEngine::run(&query, rule, &mut client).unwrap().pres();
            let advanced = AdvancedEngine::run(&query, rule, &mut client).unwrap().pres();
            prop_assert_eq!(
                &simple, &advanced,
                "engines disagree on {} under {:?} for {}", query, rule, xml
            );
            let oracle = reference_eval(&doc, &query, rule).unwrap();
            prop_assert_eq!(
                &simple, &oracle,
                "encrypted result differs from plaintext oracle on {} under {:?} for {}",
                query, rule, xml
            );
        }
    }

    #[test]
    fn equality_subset_of_containment((xml, query) in (arb_doc(), arb_query())) {
        let mut client = build_client(&xml);
        let e = SimpleEngine::run(&query, MatchRule::Equality, &mut client).unwrap().pres();
        let c = SimpleEngine::run(&query, MatchRule::Containment, &mut client).unwrap().pres();
        for pre in &e {
            prop_assert!(c.contains(pre), "E ⊄ C on {} for {}", query, xml);
        }
        // Fig 7's quotient is therefore in [0, 100].
        let acc = ssx_core::accuracy_percent(e.len(), c.len());
        prop_assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn advanced_never_needs_more_containment_tests_on_descendant_heavy_queries(
        xml in arb_doc()
    ) {
        // On `//name` queries the simple engine enumerates every descendant;
        // the advanced engine's pruned walk can only visit fewer-or-equal
        // nodes (it still pays look-ahead tests, so compare the descendant
        // expansion proxy: containment tests).
        let query = Query::new(vec![Step::descendant("gamma")]);
        let mut c1 = build_client(&xml);
        let simple = SimpleEngine::run(&query, MatchRule::Containment, &mut c1).unwrap();
        let mut c2 = build_client(&xml);
        let advanced = AdvancedEngine::run(&query, MatchRule::Containment, &mut c2).unwrap();
        prop_assert_eq!(simple.pres(), advanced.pres());
        prop_assert!(
            advanced.stats.containment_tests <= simple.stats.containment_tests,
            "advanced {} > simple {} on single-step //gamma",
            advanced.stats.containment_tests,
            simple.stats.containment_tests
        );
    }
}
