//! Aggregation correctness on random documents: COUNT/SUM/AVG through the
//! encrypted plane must agree bit-for-bit with the plaintext oracle — for
//! both engines, both matching rules, every shard count in {1, 2, 4}, and
//! with or without a numeric range predicate. The closing share-sum must
//! also cost exactly one wave beyond the frontier walk (two with a range:
//! one value-fetch wave, one share-sum wave).

use proptest::prelude::*;
use ssx_core::{
    reference_aggregate, AggOp, AggregateSpec, EncryptedDb, EngineKind, MapFile, MatchRule,
};
use ssx_prg::Seed;
use ssx_xml::Document;
use ssx_xpath::{Axis, NodeTest, Query, Step};

const TAGS: [&str; 5] = ["site", "alpha", "beta", "gamma", "delta"];

/// What a random element holds under its tags: nothing, a clean numeric
/// value (joins the numeric plane), or text the encoder must NOT treat as
/// a number.
#[derive(Clone, Debug)]
enum Leaf {
    Empty,
    Number(u64),
    Text(&'static str),
}

fn arb_leaf() -> impl Strategy<Value = Leaf> {
    prop_oneof![
        3 => Just(Leaf::Empty),
        4 => (0u64..5000).prop_map(Leaf::Number),
        1 => prop_oneof![
            Just(Leaf::Text("x1")),
            Just(Leaf::Text("4 2")),
            Just(Leaf::Text("-7")),
            Just(Leaf::Text("price unknown")),
        ],
    ]
}

/// Random tree rendered as XML: parent-pointer vector + random tags, each
/// childless position optionally carrying a leaf payload.
fn arb_doc() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(any::<proptest::sample::Index>(), 0..20),
        proptest::collection::vec((0usize..TAGS.len(), arb_leaf()), 1..21),
    )
        .prop_map(|(parent_choice, node_choice)| {
            let n = node_choice.len().min(parent_choice.len() + 1);
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
            for i in 1..n {
                let p = parent_choice[i - 1].index(i);
                children[p].push(i);
            }
            let mut doc = Document::new(TAGS[node_choice[0].0]);
            let mut ids = vec![doc.root()];
            for i in 1..n {
                let parent_id = ids[children
                    .iter()
                    .position(|c| c.contains(&i))
                    .expect("parents precede children")];
                ids.push(doc.add_element(parent_id, TAGS[node_choice[i].0]));
            }
            // Payloads go on childless elements only, so the numeric rule
            // (no element children) is actually exercised both ways.
            for (i, id) in ids.iter().enumerate() {
                if children[i].is_empty() {
                    match &node_choice[i].1 {
                        Leaf::Empty => {}
                        Leaf::Number(v) => {
                            doc.add_text(*id, &v.to_string());
                        }
                        Leaf::Text(t) => {
                            doc.add_text(*id, t);
                        }
                    }
                }
            }
            doc.to_xml()
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    let step = (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            5 => (0usize..TAGS.len()).prop_map(|i| NodeTest::Name(TAGS[i].into())),
            1 => Just(NodeTest::Star),
        ],
    )
        .prop_map(|(axis, test)| Step::new(axis, test));
    proptest::collection::vec(step, 1..4).prop_map(Query::new)
}

fn arb_range() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (0u64..5000, 0u64..5000).prop_map(|(a, b)| Some((a.min(b), a.max(b)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full matrix: op × engine × rule × shard count, one random
    /// document + query + optional range per case.
    #[test]
    fn aggregates_match_the_oracle(
        (xml, query, range) in (arb_doc(), arb_query(), arb_range())
    ) {
        let doc = Document::parse(&xml).unwrap();
        let map = MapFile::sequential(83, 1, &TAGS).unwrap();
        let seed = Seed::from_test_key(0xa99);
        let want = reference_aggregate(&doc, &query, MatchRule::Equality, 82, range).unwrap();
        let want_c = reference_aggregate(&doc, &query, MatchRule::Containment, 82, range).unwrap();
        for shards in [1u32, 2, 4] {
            let mut db = EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards)
                .unwrap();
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                for rule in [MatchRule::Containment, MatchRule::Equality] {
                    let oracle = match rule {
                        MatchRule::Equality => &want,
                        MatchRule::Containment => &want_c,
                    };
                    for op in [AggOp::Count, AggOp::Sum, AggOp::Avg] {
                        let spec = AggregateSpec { query: query.clone(), op, range };
                        let got = db.run_aggregate(&spec, kind, rule).unwrap();
                        // COUNT closes with pure fence probes — it never
                        // touches the numeric plane, so only its count is
                        // comparable; SUM/AVG carry the full triple.
                        let comparable = match op {
                            AggOp::Count => (got.count, 0, 0),
                            AggOp::Sum | AggOp::Avg => (got.count, got.contributing, got.sum),
                        };
                        let expected = match op {
                            AggOp::Count => (oracle.count, 0, 0),
                            AggOp::Sum | AggOp::Avg => {
                                (oracle.count, oracle.contributing, oracle.sum)
                            }
                        };
                        prop_assert_eq!(
                            comparable, expected,
                            "{:?} {} {:?} {:?} S={} range={:?} on {}",
                            op, &query, kind, rule, shards, range, &xml
                        );
                        prop_assert_eq!(got.value(), match op {
                            AggOp::Count => Some((oracle.count as u128, 1)),
                            AggOp::Sum => Some((oracle.sum, 1)),
                            AggOp::Avg => oracle.avg(),
                        });
                        // Zero extra waves: one closing share-sum wave, plus
                        // one value-fetch wave when a range must be tested —
                        // independent of match count and shard count.
                        let expect_waves = if range.is_some() { 2 } else { 1 };
                        prop_assert_eq!(
                            got.closing_waves, expect_waves,
                            "closing waves for {} S={} range={:?}", &query, shards, range
                        );
                        prop_assert_eq!(got.retries, 0);
                    }
                }
            }
        }
    }
}
