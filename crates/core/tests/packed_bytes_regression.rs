//! Wire/storage-format regression: the evaluation-domain encoder must emit
//! **bit-identical** packed bytes to the original coefficient-domain
//! encoder.
//!
//! The hex snapshots below pin the PR-8 share stream: client shares come
//! from the **lane-packed** bulk `fill_below` protocol (each 64-bit PRG word
//! feeds `⌊64/w⌋` rejection-sampling lanes), which deliberately replaced the
//! one-draw-per-value stream of earlier PRs. Any drift from here on means
//! the on-disk/on-wire data changed — a compatibility break, not a refactor.
//! The `coefficient_domain_recomputation_matches_encoder` test below keeps
//! proving the eval-domain encoder and the coefficient-domain baseline are
//! the same ring element regardless of the stream protocol.

use ssx_core::{encode_document, MapFile};
use ssx_poly::{random_poly, Packer, RingCtx};
use ssx_prg::{node_prg, Seed};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The figure-1 worked example over `F_5` (map: a=2, b=1, c=3): the document
/// whose node polynomials §3 computes by hand — `<b><c/></b>` is the
/// middle-left `(x−1)(x−3)`, the second `<b>` the middle-right product, the
/// root `a` the reduced square.
#[test]
fn figure1_example_bytes_unchanged() {
    let map = MapFile::sequential(5, 1, &["b", "a", "c"]).unwrap();
    let seed = Seed::from_test_key(1);
    let out = encode_document("<a><b><c/></b><b><c/><a/></b></a>", &map, &seed).unwrap();
    // (pre, packed server share) snapshot under the lane-packed PRG stream.
    let baseline = [
        (1u32, "ef01"),
        (2, "1000"),
        (3, "b000"),
        (4, "2601"),
        (5, "1e00"),
        (6, "2902"),
    ];
    assert_eq!(out.table.len(), baseline.len());
    for (pre, expected) in baseline {
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(hex(&row.poly), expected, "pre={pre}");
    }
}

/// The paper's `q = 83` configuration on a small document, same pinning.
#[test]
fn f83_bytes_unchanged() {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let seed = Seed::from_test_key(11);
    let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
    let baseline = [
        (
            1u32,
            "12f49ba5870fe4b0cfebe5d26dd57517219c7b1d6c349cd3db3622d79156ffc97c80\
             8f3e36243025e3a26cc3195c63a42a466e7453005baf6dd30b04ba145c83dd00",
        ),
        (
            2,
            "13555914e8eef52c7f286aa2e902e075fef3917331f377dc95f1c5a49c990a4d8517\
             d03b34de7919d29efd03b57b7356798e2fd8b107fb99091926ab7befc79b6e04",
        ),
        (
            3,
            "ee4f8fd18d59a823cb567879001dc452162922e8aa112fd08988a91e27082a67ab39\
             637b74645a0713bad32d6080e0bd2a539eddd1abc6cf5bdb23d4f318ca8eda05",
        ),
        (
            4,
            "0799941b5bbf7183a77c2eb8ec9757798737fbd5a9648cd1734f2c531530c109675e\
             c3742bab521bf684e6ba9e6be7800f8ea027255c2d74cea1d43824aeed8c1205",
        ),
        (
            5,
            "22c353a68e8251e69e7d2ed7cbb1220378c81be0c51a2d4255bfa9cb1a350f1b65a0\
             18a94ef56cbc5e87eef0cc5620a8eddaefe9cd4fa6186fd1028b5300ba7d0e02",
        ),
    ];
    assert_eq!(out.table.len(), baseline.len());
    for (pre, expected) in baseline {
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(hex(&row.poly), expected, "pre={pre}");
    }
}

/// Independent recomputation: build every node polynomial with the
/// *coefficient-domain* ring operations (`mul_linear`/`mul`), split with the
/// same PRG draws, and require byte equality with the evaluation-domain
/// encoder's table. This proves conversion happens only at the pack/unpack
/// boundary — the two domains are the same ring element.
#[test]
fn coefficient_domain_recomputation_matches_encoder() {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let seed = Seed::from_test_key(11);
    let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
    let ring = RingCtx::new(83, 1).unwrap();
    let packer = Packer::new(&ring);
    let v = |n: &str| map.value(n).unwrap();
    // Plaintext polynomials by hand, coefficient domain only.
    let b1 = ring.linear(v("b"));
    let b2 = ring.linear(v("b"));
    let a = ring.mul_linear(&ring.mul(&b1, &b2), v("a"));
    let c = ring.linear(v("c"));
    let site = ring.mul_linear(&ring.mul(&a, &c), v("site"));
    // pre numbering: site=1, a=2, b=3, b=4, c=5.
    for (pre, plain) in [(1u32, &site), (2, &a), (3, &b1), (4, &b2), (5, &c)] {
        let client = random_poly(&ring, &mut node_prg(&seed, pre as u64));
        let server = ring.sub(plain, &client);
        let expected = packer.pack_radix(&server);
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(&row.poly[..], &expected[..], "pre={pre}");
    }
}
