//! Wire/storage-format regression: the evaluation-domain encoder must emit
//! **bit-identical** packed bytes to the original coefficient-domain
//! encoder.
//!
//! The hex snapshots below were captured from the pre-dual-representation
//! build (PR 1, coefficient-domain `mul`/`mul_linear` throughout). Any drift
//! here means the evaluation-domain fast path changed on-disk/on-wire data —
//! a compatibility break, not a refactor.

use ssx_core::{encode_document, MapFile};
use ssx_poly::{random_poly, Packer, RingCtx};
use ssx_prg::{node_prg, Seed};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The figure-1 worked example over `F_5` (map: a=2, b=1, c=3): the document
/// whose node polynomials §3 computes by hand — `<b><c/></b>` is the
/// middle-left `(x−1)(x−3)`, the second `<b>` the middle-right product, the
/// root `a` the reduced square.
#[test]
fn figure1_example_bytes_unchanged() {
    let map = MapFile::sequential(5, 1, &["b", "a", "c"]).unwrap();
    let seed = Seed::from_test_key(1);
    let out = encode_document("<a><b><c/></b><b><c/><a/></b></a>", &map, &seed).unwrap();
    // (pre, packed server share) snapshot from the coefficient-form baseline.
    let baseline = [
        (1u32, "3f01"),
        (2, "0402"),
        (3, "6302"),
        (4, "8a01"),
        (5, "0000"),
        (6, "9900"),
    ];
    assert_eq!(out.table.len(), baseline.len());
    for (pre, expected) in baseline {
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(hex(&row.poly), expected, "pre={pre}");
    }
}

/// The paper's `q = 83` configuration on a small document, same pinning.
#[test]
fn f83_bytes_unchanged() {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let seed = Seed::from_test_key(11);
    let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
    let baseline = [
        (
            1u32,
            "eb68a1b567e40764bce08920e6ca0368984fe34354b5b907cad874763f4806d6e634\
             50bede4c0dabe9aa6b92bccb49a352ce5a657b3b72494f9df523208b61ee0603",
        ),
        (
            2,
            "1ae431402514a7ac046d8163930a22487ebe981999ff40ccd06d61a3283d9e30c0b9\
             af60cdf24c98d1069c88da5281e85f7969bec0e8d9ee07656f9fc9d5081b5f04",
        ),
        (
            3,
            "41c3a34781bb23318924594473d7fbba0db9840c926d6cb05353ea6b2ee40736656c\
             cb4032eeadd65303c65330b7b5a13bb3ffa030d60c1d887fbd70876dfa214000",
        ),
        (
            4,
            "e026be05509b0d743fde9543212c049acb7b5f1ff444e30d46c7af2917418f713151\
             bfebaa221cd4a226791d99cda746c4336bb23ca854c710dbc7e87d142a674901",
        ),
        (
            5,
            "3b681be68af47bd92bcae0abc3d5e0c0c81a45aaa670e0b78589fc16c3444311f64e\
             28a2ccf317d008ed265a044f59a2beed1d60e3936c3ece96b1beb0e00c7bf805",
        ),
    ];
    assert_eq!(out.table.len(), baseline.len());
    for (pre, expected) in baseline {
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(hex(&row.poly), expected, "pre={pre}");
    }
}

/// Independent recomputation: build every node polynomial with the
/// *coefficient-domain* ring operations (`mul_linear`/`mul`), split with the
/// same PRG draws, and require byte equality with the evaluation-domain
/// encoder's table. This proves conversion happens only at the pack/unpack
/// boundary — the two domains are the same ring element.
#[test]
fn coefficient_domain_recomputation_matches_encoder() {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let seed = Seed::from_test_key(11);
    let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
    let ring = RingCtx::new(83, 1).unwrap();
    let packer = Packer::new(&ring);
    let v = |n: &str| map.value(n).unwrap();
    // Plaintext polynomials by hand, coefficient domain only.
    let b1 = ring.linear(v("b"));
    let b2 = ring.linear(v("b"));
    let a = ring.mul_linear(&ring.mul(&b1, &b2), v("a"));
    let c = ring.linear(v("c"));
    let site = ring.mul_linear(&ring.mul(&a, &c), v("site"));
    // pre numbering: site=1, a=2, b=3, b=4, c=5.
    for (pre, plain) in [(1u32, &site), (2, &a), (3, &b1), (4, &b2), (5, &c)] {
        let client = random_poly(&ring, &mut node_prg(&seed, pre as u64));
        let server = ring.sub(plain, &client);
        let expected = packer.pack_radix(&server);
        let row = out.table.by_pre(pre).unwrap();
        assert_eq!(&row.poly[..], &expected[..], "pre={pre}");
    }
}
