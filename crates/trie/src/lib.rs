#![warn(missing_docs)]

//! The trie enhancement for text data (paper §4).
//!
//! The base scheme can only encode tag names because every distinct value
//! needs its own nonzero element of `F_q` — fine for a DTD-bounded tag set,
//! impossible for unbounded text. The paper's fix: re-encode every data
//! string as a *trie* of single-character nodes drawn from a small alphabet,
//! so text becomes more tree structure and the existing polynomial scheme
//! applies unchanged.
//!
//! * A data string is split into words ([`split_words`]); each word becomes
//!   a path of character nodes terminated by `⊥` (rendered as the element
//!   `"_"`, see the `ssx-xpath` crate's `TRIE_WORD_END` mirror constant
//!   [`WORD_END_NAME`]).
//! * The **compressed** trie merges shared prefixes and deduplicates words —
//!   smallest, but "loses the order and cardinality of the words".
//! * The **uncompressed** trie keeps one path per word occurrence and
//!   preserves exactly the original information.
//!
//! [`transform_document`] rewrites a parsed document, replacing text nodes
//! with trie subtrees; [`TrieStats`] quantifies the §4 compression claims
//! (≈50% from word dedup, 75–80% from the compressed trie, ≈3.5–4.5 bytes
//! per letter at `p = 29`).

pub mod stats;
pub mod transform;
pub mod trie;
pub mod words;

pub use stats::{corpus_stats, TrieStats};
pub use transform::{transform_document, TrieMode};
pub use trie::Trie;
pub use words::{split_words, trie_alphabet, WORD_END_NAME};
