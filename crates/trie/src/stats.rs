//! Quantifying the §4 compression claims.
//!
//! > "On average removing duplicate words from a text reduces the size by
//! > 50%. Reducing a text into a compressed trie reduces the size by 75-80%.
//! > However each node is converted into a polynomial of size
//! > (p^e − 1)·log2 p^e bits. In case p = 29 a polynomial costs 17 bytes.
//! > Due to the trie compression the 'encryption' of a single letter will
//! > cost approximately 3½ − 4½ bytes."

use crate::trie::Trie;
use crate::words::split_words;

/// Size statistics for a text corpus under the trie transformations.
#[derive(Clone, Debug, PartialEq)]
pub struct TrieStats {
    /// Characters across all word occurrences (the "original size").
    pub original_chars: usize,
    /// Number of word occurrences.
    pub word_occurrences: usize,
    /// Number of distinct words.
    pub distinct_words: usize,
    /// Characters across distinct words (size after removing duplicates).
    pub deduped_chars: usize,
    /// Character nodes in the compressed trie.
    pub trie_char_nodes: usize,
    /// Terminator nodes in the compressed trie.
    pub trie_terminals: usize,
}

impl TrieStats {
    /// Fractional size reduction from removing duplicate words
    /// (paper: ≈ 0.5 on natural text).
    pub fn dedup_reduction(&self) -> f64 {
        reduction(self.original_chars, self.deduped_chars)
    }

    /// Fractional size reduction of the compressed trie vs the original
    /// character count (paper: 0.75–0.80 on natural text).
    pub fn trie_reduction(&self) -> f64 {
        reduction(self.original_chars, self.trie_char_nodes)
    }

    /// Effective encrypted cost per original letter when every trie node
    /// (characters + terminators) costs `poly_bytes` (paper: 3.5–4.5 bytes
    /// per letter at 17-byte polynomials).
    pub fn bytes_per_letter(&self, poly_bytes: f64) -> f64 {
        if self.original_chars == 0 {
            return 0.0;
        }
        (self.trie_char_nodes + self.trie_terminals) as f64 * poly_bytes
            / self.original_chars as f64
    }
}

fn reduction(before: usize, after: usize) -> f64 {
    if before == 0 {
        return 0.0;
    }
    1.0 - after as f64 / before as f64
}

/// Computes [`TrieStats`] over a corpus of text fragments (e.g. every text
/// node of a document).
pub fn corpus_stats<'a, I: IntoIterator<Item = &'a str>>(fragments: I) -> TrieStats {
    let mut words: Vec<String> = Vec::new();
    for frag in fragments {
        words.extend(split_words(frag));
    }
    let original_chars: usize = words.iter().map(|w| w.chars().count()).sum();
    let word_occurrences = words.len();
    let mut distinct: Vec<&str> = words.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let deduped_chars: usize = distinct.iter().map(|w| w.chars().count()).sum();
    let trie = Trie::from_words(&words);
    TrieStats {
        original_chars,
        word_occurrences,
        distinct_words: distinct.len(),
        deduped_chars,
        trie_char_nodes: trie.char_node_count(),
        trie_terminals: trie.terminal_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_repetitive_text() {
        // 10 copies of "the cat sat on the mat": heavy duplication.
        let text = "the cat sat on the mat. ".repeat(10);
        let stats = corpus_stats([text.as_str()]);
        assert_eq!(stats.word_occurrences, 60);
        assert_eq!(stats.distinct_words, 5); // the, cat, sat, on, mat
                                             // 60 occurrences, "the" twice per sentence: chars = 10*(3+3+3+2+3+3).
        assert_eq!(stats.original_chars, 170);
        assert_eq!(stats.deduped_chars, 3 + 3 + 3 + 2 + 3);
        assert!(stats.dedup_reduction() > 0.9, "repetition dedups massively");
        assert!(stats.trie_reduction() > 0.9);
    }

    #[test]
    fn trie_never_larger_than_dedup() {
        let stats = corpus_stats(["alpha alphabet alphabetical beta betamax"]);
        assert!(stats.trie_char_nodes <= stats.deduped_chars);
        assert!(stats.deduped_chars <= stats.original_chars);
    }

    #[test]
    fn bytes_per_letter_formula() {
        let stats = corpus_stats(["aaa aaa"]); // one word "aaa", 6 original chars
        assert_eq!(stats.original_chars, 6);
        assert_eq!(stats.trie_char_nodes, 3);
        assert_eq!(stats.trie_terminals, 1);
        // (3 + 1) * 17 / 6 ≈ 11.3
        let bpl = stats.bytes_per_letter(17.0);
        assert!((bpl - 4.0 * 17.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus() {
        let stats = corpus_stats(std::iter::empty());
        assert_eq!(stats.original_chars, 0);
        assert_eq!(stats.dedup_reduction(), 0.0);
        assert_eq!(stats.bytes_per_letter(17.0), 0.0);
    }

    #[test]
    fn fragments_merge() {
        let a = corpus_stats(["one two", "two three"]);
        let b = corpus_stats(["one two two three"]);
        assert_eq!(a, b);
    }
}
