//! The compressed trie data structure (Fredkin 1960, as cited by the paper).

use std::collections::BTreeMap;

/// A compressed trie over word strings. Children are ordered (BTreeMap) so
/// document generation is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trie {
    children: BTreeMap<char, Trie>,
    /// True when a word ends at this node (rendered as a `⊥` child).
    terminal: bool,
}

impl Trie {
    /// Empty trie.
    pub fn new() -> Self {
        Trie::default()
    }

    /// Builds a trie from words (duplicates collapse — that is the point).
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Trie::new();
        for w in words {
            t.insert(w.as_ref());
        }
        t
    }

    /// Inserts one word.
    pub fn insert(&mut self, word: &str) {
        let mut node = self;
        for c in word.chars() {
            node = node.children.entry(c).or_default();
        }
        node.terminal = true;
    }

    /// True when `word` was inserted exactly (terminator honoured).
    pub fn contains_word(&self, word: &str) -> bool {
        match self.walk(word) {
            Some(node) => node.terminal,
            None => false,
        }
    }

    /// True when some inserted word starts with `prefix` — the semantics of
    /// the paper's `contains(text(), …)` path query without a terminator.
    pub fn contains_prefix(&self, prefix: &str) -> bool {
        self.walk(prefix).is_some()
    }

    /// Ordered child iterator.
    pub fn children(&self) -> impl Iterator<Item = (char, &Trie)> {
        self.children.iter().map(|(&c, t)| (c, t))
    }

    /// True when a word terminates here.
    pub fn is_terminal(&self) -> bool {
        self.terminal
    }

    /// Number of character nodes (excluding the root, excluding
    /// terminators) — the §4 "size" of the compressed representation.
    pub fn char_node_count(&self) -> usize {
        self.children
            .values()
            .map(|t| 1 + t.char_node_count())
            .sum()
    }

    /// Number of terminator (`⊥`) nodes.
    pub fn terminal_count(&self) -> usize {
        self.children
            .values()
            .map(Trie::terminal_count)
            .sum::<usize>()
            + usize::from(self.terminal)
    }

    /// All stored words, in lexicographic order.
    pub fn words(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut prefix = String::new();
        self.collect_words(&mut prefix, &mut out);
        out
    }

    fn collect_words(&self, prefix: &mut String, out: &mut Vec<String>) {
        if self.terminal {
            out.push(prefix.clone());
        }
        for (c, child) in &self.children {
            prefix.push(*c);
            child.collect_words(prefix, out);
            prefix.pop();
        }
    }

    fn walk(&self, s: &str) -> Option<&Trie> {
        let mut node = self;
        for c in s.chars() {
            node = node.children.get(&c)?;
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_shared_prefix() {
        // "joan" and "johnson" share the prefix "jo" (fig 2(b)).
        let t = Trie::from_words(["joan", "johnson"]);
        // j, o shared; a, n for joan; h, n, s, o, n for johnson = 2 + 2 + 5.
        assert_eq!(t.char_node_count(), 9);
        assert_eq!(t.terminal_count(), 2);
        assert!(t.contains_word("joan"));
        assert!(t.contains_word("johnson"));
        assert!(!t.contains_word("jo"));
        assert!(t.contains_prefix("jo"));
        assert!(!t.contains_prefix("jx"));
    }

    #[test]
    fn duplicates_collapse() {
        let once = Trie::from_words(["abc"]);
        let thrice = Trie::from_words(["abc", "abc", "abc"]);
        assert_eq!(once, thrice);
        assert_eq!(thrice.char_node_count(), 3);
    }

    #[test]
    fn words_round_trip_sorted() {
        let t = Trie::from_words(["beta", "alpha", "beta", "a"]);
        assert_eq!(t.words(), vec!["a", "alpha", "beta"]);
    }

    #[test]
    fn prefix_word_interaction() {
        let t = Trie::from_words(["car", "cart"]);
        assert!(t.contains_word("car"));
        assert!(t.contains_word("cart"));
        assert!(!t.contains_word("ca"));
        assert_eq!(t.char_node_count(), 4); // c, a, r, t
        assert_eq!(t.terminal_count(), 2);
    }

    #[test]
    fn empty_trie() {
        let t = Trie::new();
        assert_eq!(t.char_node_count(), 0);
        assert_eq!(t.terminal_count(), 0);
        assert!(t.words().is_empty());
        assert!(t.contains_prefix(""), "empty prefix always present");
        assert!(!t.contains_word(""));
    }

    #[test]
    fn empty_word_marks_root_terminal() {
        let mut t = Trie::new();
        t.insert("");
        assert!(t.contains_word(""));
        assert_eq!(t.terminal_count(), 1);
        assert_eq!(t.char_node_count(), 0);
    }
}
