//! Word splitting and the trie alphabet.
//!
//! "In this example we first split a string into words, represented by
//! paths, and then each path is split into several characters. Other ways of
//! splitting the string into nodes are possible." (§4)

/// Element name standing in for the paper's `⊥` terminator node.
pub const WORD_END_NAME: &str = "_";

/// The trie alphabet: `a..z`, `0..9` — 36 character classes. Together with
/// the terminator that is 37 extra tag names the field must accommodate
/// (hence `p = 131` for trie-enabled databases, see DESIGN.md).
pub fn trie_alphabet() -> Vec<String> {
    let mut out: Vec<String> = ('a'..='z')
        .chain('0'..='9')
        .map(|c| c.to_string())
        .collect();
    out.push(WORD_END_NAME.to_string());
    out
}

/// Splits a data string into trie words: maximal alphanumeric runs,
/// lowercased. Everything else (punctuation, whitespace, symbols) separates
/// words, mirroring the query-side translation in `ssx-xpath`.
pub fn split_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        assert_eq!(split_words("Joan Johnson"), vec!["joan", "johnson"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(
            split_words("O'Neil, 3rd item!"),
            vec!["o", "neil", "3rd", "item"]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(split_words("").is_empty());
        assert!(split_words("  \t \n ").is_empty());
        assert!(split_words("...---...").is_empty());
    }

    #[test]
    fn non_ascii_dropped_as_separators() {
        assert_eq!(split_words("café au lait"), vec!["caf", "au", "lait"]);
    }

    #[test]
    fn alphabet_size() {
        let a = trie_alphabet();
        assert_eq!(a.len(), 37);
        assert!(a.contains(&"a".to_string()));
        assert!(a.contains(&"9".to_string()));
        assert!(a.contains(&WORD_END_NAME.to_string()));
    }

    #[test]
    fn words_stay_within_alphabet() {
        let alphabet = trie_alphabet();
        for w in split_words("The Quick-Brown FOX no. 99!") {
            for c in w.chars() {
                assert!(alphabet.contains(&c.to_string()), "{c} outside alphabet");
            }
        }
    }
}
