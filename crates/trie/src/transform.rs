//! Rewriting a document so text nodes become trie subtrees.
//!
//! After this pass every node in the document is an element whose name is
//! either an original tag or a single trie character (or the terminator), so
//! the unmodified polynomial encoding covers text search too. This is the
//! integration the paper lists as future work ("The trie-representation is
//! not yet part of the current prototype", §7) — implemented here.

use crate::trie::Trie;
use crate::words::{split_words, WORD_END_NAME};
use ssx_xml::{Document, NodeId, NodeKind};

/// Which §4 representation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrieMode {
    /// Figure 2(b): shared prefixes, duplicates collapsed. Smallest; loses
    /// word order and multiplicity.
    Compressed,
    /// Figure 2(c): one path per word occurrence. Larger; information
    /// preserving.
    Uncompressed,
}

/// Returns a copy of `doc` in which every text node is replaced by its trie
/// representation: character-element paths under the text node's parent,
/// each word terminated by a `⊥` (`"_"`) element.
pub fn transform_document(doc: &Document, mode: TrieMode) -> Document {
    let mut out = Document::new(doc.name(doc.root()).expect("root is an element"));
    let out_root = out.root();
    copy_children(doc, doc.root(), &mut out, out_root, mode);
    out
}

fn copy_children(
    src: &Document,
    src_node: NodeId,
    dst: &mut Document,
    dst_node: NodeId,
    mode: TrieMode,
) {
    // Gather the words of all immediate text children first so compressed
    // mode merges them into a single trie per parent element.
    let mut words: Vec<String> = Vec::new();
    for &child in src.children(src_node) {
        match src.kind(child) {
            NodeKind::Element(name) => {
                let name = name.clone();
                let new_child = dst.add_element(dst_node, &name);
                copy_children(src, child, dst, new_child, mode);
            }
            NodeKind::Text(t) => words.extend(split_words(t)),
        }
    }
    if words.is_empty() {
        return;
    }
    match mode {
        TrieMode::Compressed => {
            let trie = Trie::from_words(&words);
            emit_trie(&trie, dst, dst_node);
        }
        TrieMode::Uncompressed => {
            for w in &words {
                let mut cur = dst_node;
                for c in w.chars() {
                    cur = dst.add_element(cur, &c.to_string());
                }
                dst.add_element(cur, WORD_END_NAME);
            }
        }
    }
}

fn emit_trie(trie: &Trie, dst: &mut Document, parent: NodeId) {
    if trie.is_terminal() {
        dst.add_element(parent, WORD_END_NAME);
    }
    for (c, child) in trie.children() {
        let node = dst.add_element(parent, &c.to_string());
        emit_trie(child, dst, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_compressed() {
        let doc = Document::parse("<name>Joan Johnson</name>").unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        // Root <name>, one child 'j' (shared), then 'o', branching to
        // a-n-⊥ and h-n-s-o-n-⊥.
        let root = out.root();
        assert_eq!(out.name(root), Some("name"));
        let top: Vec<_> = out.child_elements(root).collect();
        assert_eq!(top.len(), 1);
        assert_eq!(out.name(top[0]), Some("j"));
        // Count: 9 char nodes + 2 terminators + root = 12 elements.
        assert_eq!(out.element_count(), 12);
    }

    #[test]
    fn paper_figure2_uncompressed() {
        let doc = Document::parse("<name>Joan Johnson</name>").unwrap();
        let out = transform_document(&doc, TrieMode::Uncompressed);
        // Two independent paths: 4 + 7 char nodes + 2 terminators + root.
        assert_eq!(out.element_count(), 4 + 7 + 2 + 1);
        let top: Vec<_> = out.child_elements(out.root()).collect();
        assert_eq!(top.len(), 2, "one path per word");
    }

    #[test]
    fn duplicates_collapse_only_in_compressed() {
        let doc = Document::parse("<t>dog dog dog</t>").unwrap();
        let compressed = transform_document(&doc, TrieMode::Compressed);
        let uncompressed = transform_document(&doc, TrieMode::Uncompressed);
        // dog = 3 chars + ⊥ + root.
        assert_eq!(compressed.element_count(), 3 + 1 + 1);
        assert_eq!(uncompressed.element_count(), 3 * (3 + 1) + 1);
    }

    #[test]
    fn elements_preserved_text_replaced() {
        let doc = Document::parse("<person><name>Ann</name><age>30</age></person>").unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        assert_eq!(out.name(out.root()), Some("person"));
        let kids: Vec<_> = out.child_elements(out.root()).collect();
        assert_eq!(out.name(kids[0]), Some("name"));
        assert_eq!(out.name(kids[1]), Some("age"));
        // "ann" path under name: a-n-n-⊥; "30" under age: 3-0-⊥.
        let name_sub = out.descendants(kids[0]);
        assert_eq!(name_sub.len(), 1 + 3 + 1);
        // No text nodes remain anywhere.
        for id in out.descendants(out.root()) {
            assert!(out.name(id).is_some(), "text node survived transformation");
        }
    }

    #[test]
    fn querying_transformed_doc_by_path() {
        // The path j/o/a/n must exist under <name> after transformation —
        // the document-side counterpart of the query translation.
        let doc = Document::parse("<name>Joan Johnson</name>").unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        let mut cur = out.root();
        for c in ["j", "o", "a", "n"] {
            cur = out
                .child_elements(cur)
                .find(|&id| out.name(id) == Some(c))
                .unwrap_or_else(|| panic!("missing path element {c}"));
        }
        // Terminal marker present (joan is a whole word).
        assert!(out
            .child_elements(cur)
            .any(|id| out.name(id) == Some(WORD_END_NAME)));
    }

    #[test]
    fn mixed_content_words_merge_per_parent() {
        let doc = Document::parse("<t>ab<x/>ab cd</t>").unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        // Words {ab, cd}: 4 char nodes + 2 terminators + <x/> + root = 8.
        assert_eq!(out.element_count(), 8);
    }

    #[test]
    fn empty_text_only_whitespace() {
        let doc = Document::parse("<t>   </t>").unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        assert_eq!(out.element_count(), 1);
    }
}
