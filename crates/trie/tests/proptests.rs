//! Property tests: the trie against a set model, and the document
//! transformation against direct word extraction.

use proptest::prelude::*;
use ssx_trie::{corpus_stats, split_words, transform_document, Trie, TrieMode, WORD_END_NAME};
use ssx_xml::Document;
use std::collections::BTreeSet;

fn arb_words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z0-9]{1,10}", 0..40)
}

proptest! {
    /// Trie membership behaves exactly like a set of words.
    #[test]
    fn trie_models_a_word_set(words in arb_words(), probes in arb_words()) {
        let trie = Trie::from_words(&words);
        let model: BTreeSet<&String> = words.iter().collect();
        for w in &words {
            prop_assert!(trie.contains_word(w));
        }
        for p in &probes {
            prop_assert_eq!(trie.contains_word(p), model.contains(p), "word {}", p);
            let has_prefix = model.iter().any(|w| w.starts_with(p.as_str()));
            prop_assert_eq!(trie.contains_prefix(p), has_prefix, "prefix {}", p);
        }
        prop_assert_eq!(trie.words(), model.into_iter().cloned().collect::<Vec<_>>());
    }

    /// Character node count equals the number of distinct prefixes.
    #[test]
    fn char_nodes_count_distinct_prefixes(words in arb_words()) {
        let trie = Trie::from_words(&words);
        let mut prefixes = BTreeSet::new();
        for w in &words {
            for i in 1..=w.len() {
                prefixes.insert(&w[..i]);
            }
        }
        prop_assert_eq!(trie.char_node_count(), prefixes.len());
        // Terminators = distinct words.
        let distinct: BTreeSet<&String> = words.iter().collect();
        prop_assert_eq!(trie.terminal_count(), distinct.len());
    }

    /// The transformed document contains exactly the corpus words as paths.
    #[test]
    fn transformation_preserves_words(words in arb_words()) {
        let text = words.join(" ");
        let xml = format!("<t>{text}</t>");
        let doc = Document::parse(&xml).unwrap();
        let out = transform_document(&doc, TrieMode::Compressed);
        // Walk every root-to-terminator path and collect the words.
        let mut found = BTreeSet::new();
        collect_words(&out, out.root(), String::new(), &mut found);
        let expect: BTreeSet<String> = split_words(&text).into_iter().collect();
        prop_assert_eq!(found, expect);
    }

    /// Stats are internally consistent on arbitrary corpora.
    #[test]
    fn stats_invariants(words in arb_words()) {
        let text = words.join(" ");
        let stats = corpus_stats([text.as_str()]);
        prop_assert!(stats.deduped_chars <= stats.original_chars);
        prop_assert!(stats.trie_char_nodes <= stats.deduped_chars);
        prop_assert!(stats.distinct_words <= stats.word_occurrences);
        prop_assert_eq!(stats.trie_terminals, stats.distinct_words);
        prop_assert!((0.0..=1.0).contains(&stats.dedup_reduction()));
        prop_assert!((0.0..=1.0).contains(&stats.trie_reduction()));
    }
}

fn collect_words(
    doc: &Document,
    node: ssx_xml::NodeId,
    prefix: String,
    out: &mut BTreeSet<String>,
) {
    for child in doc.child_elements(node) {
        let name = doc.name(child).unwrap();
        if name == WORD_END_NAME {
            out.insert(prefix.clone());
        } else if name.chars().count() == 1 {
            let mut next = prefix.clone();
            next.push_str(name);
            collect_words(doc, child, next, out);
        }
    }
}
