//! The streaming document generator.
//!
//! Byte budgets are split across the six `site` sections with proportions
//! close to the original XMark's output mix; inside a section, entities are
//! emitted until the section budget is exhausted. A handful of entities are
//! *forced* regardless of budget so the paper's experiment queries always
//! have witnesses: a `europe` item with the full
//! `description/parlist/listitem/text/keyword` chain (Table 1, length-9
//! query), a person with an address (`city`), and an open auction with a
//! bidder (`//bidder/date`).

use crate::vocab::Vocabulary;
use ssx_prg::Prg;
use ssx_xml::XmlWriter;

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct XmarkConfig {
    /// PRG seed; equal seeds give byte-identical documents.
    pub seed: u64,
    /// Approximate output size in bytes (the generator overshoots by at most
    /// one entity, roughly a kilobyte).
    pub target_bytes: usize,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            seed: 42,
            target_bytes: 256 * 1024,
        }
    }
}

/// Generates an auction document per the appendix-A DTD.
pub fn generate(cfg: &XmarkConfig) -> String {
    let mut prg = Prg::from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
    // A large, flattish vocabulary so the word-repetition statistics (§4:
    // dedup ≈ 50% on natural text) are in a realistic band.
    let vocab = Vocabulary::with_exponent(&mut prg, 6000, 0.75);
    let mut g = Gen {
        w: XmlWriter::new(false),
        prg,
        vocab,
        items: 0,
        persons: 0,
        categories: 0,
        open_auctions: 0,
    };
    g.site(cfg.target_bytes);
    g.w.finish()
}

struct Gen {
    w: XmlWriter,
    prg: Prg,
    vocab: Vocabulary,
    items: u32,
    persons: u32,
    categories: u32,
    open_auctions: u32,
}

impl Gen {
    fn site(&mut self, target: usize) {
        let t = target as f64;
        self.w.start_element("site");
        self.regions((t * 0.40) as usize);
        self.categories_section((t * 0.45) as usize);
        self.catgraph((t * 0.47) as usize);
        self.people((t * 0.70) as usize);
        self.open_auctions_section((t * 0.90) as usize);
        self.closed_auctions_section(target);
        self.w.end_element();
    }

    // ---- regions ---------------------------------------------------------

    fn regions(&mut self, end: usize) {
        let base = self.w.len();
        let span = end.saturating_sub(base) as f64;
        self.w.start_element("regions");
        // Continent shares mirror the original generator's skew.
        let shares = [
            ("africa", 0.04),
            ("asia", 0.20),
            ("australia", 0.28),
            ("europe", 0.64),
            ("namerica", 0.92),
            ("samerica", 1.0),
        ];
        for (name, cum) in shares {
            let continent_end = base + (span * cum) as usize;
            self.w.start_element(name);
            // The witness item for the Table-1 chain lives in europe.
            if name == "europe" {
                self.item(true);
            }
            while self.w.len() < continent_end {
                self.item(false);
            }
            self.w.end_element();
        }
        self.w.end_element();
    }

    fn item(&mut self, force_deep_description: bool) {
        self.items += 1;
        let id = self.items;
        self.w.start_element("item");
        self.w.attribute("id", &format!("item{id}"));
        let loc = self.name_string();
        self.leaf("location", &loc);
        let qty = self.prg.next_range(1, 10).to_string();
        self.leaf("quantity", &qty);
        let nm = self.name_string();
        self.leaf("name", &nm);
        let pay = ["Cash", "Creditcard", "Money order", "Personal Check"];
        let pay = *self.prg.pick(&pay);
        self.leaf("payment", pay);
        self.description(force_deep_description, 0);
        let ship = [
            "Will ship internationally",
            "Buyer pays fixed shipping charges",
            "See description for charges",
        ];
        let ship = *self.prg.pick(&ship);
        self.leaf("shipping", ship);
        let incats = self.prg.next_range(1, 3);
        for _ in 0..incats {
            let cat = self.prg.next_range(1, self.categories.max(1) as u64);
            self.w.start_element("incategory");
            self.w.attribute("category", &format!("category{cat}"));
            self.w.end_element();
        }
        self.w.start_element("mailbox");
        let mails = self.prg.next_range(0, 2);
        for _ in 0..mails {
            self.mail();
        }
        self.w.end_element();
        self.w.end_element();
    }

    fn mail(&mut self) {
        self.w.start_element("mail");
        let from = self.name_string();
        self.leaf("from", &from);
        let to = self.name_string();
        self.leaf("to", &to);
        let date = self.date();
        self.leaf("date", &date);
        self.text_element(20, 80);
        self.w.end_element();
    }

    /// description := (text | parlist)
    fn description(&mut self, force_parlist: bool, depth: u32) {
        self.w.start_element("description");
        if force_parlist || (depth < 2 && self.prg.chance(0.35)) {
            self.parlist(force_parlist, depth + 1);
        } else {
            self.text_element(30, 120);
        }
        self.w.end_element();
    }

    /// parlist := (listitem)*
    fn parlist(&mut self, force_text_keyword: bool, depth: u32) {
        self.w.start_element("parlist");
        let n = if force_text_keyword {
            1
        } else {
            self.prg.next_range(1, 3)
        };
        for i in 0..n {
            self.w.start_element("listitem");
            let nested = !force_text_keyword && depth < 2 && self.prg.chance(0.25);
            if nested {
                self.parlist(false, depth + 1);
            } else if force_text_keyword && i == 0 {
                // Witness: text with a keyword child (Table-1 query tail).
                self.w.start_element("text");
                let s = self.sentence(4, 8);
                self.w.text(&s);
                self.w.start_element("keyword");
                let kw = self.sentence(1, 2);
                self.w.text(&kw);
                self.w.end_element();
                let s2 = self.sentence(2, 6);
                self.w.text(&s2);
                self.w.end_element();
            } else {
                self.text_element(25, 100);
            }
            self.w.end_element();
        }
        self.w.end_element();
    }

    /// text := (#PCDATA | bold | keyword | emph)*
    fn text_element(&mut self, min_words: u64, max_words: u64) {
        self.w.start_element("text");
        let total = self.prg.next_range(min_words, max_words);
        let mut emitted = 0;
        while emitted < total {
            let run = self.prg.next_range(1, 6).min(total - emitted);
            let s = self.sentence(run, run);
            self.w.text(&s);
            emitted += run;
            if emitted < total && self.prg.chance(0.25) {
                let tag = *self.prg.pick(&["bold", "keyword", "emph"]);
                self.w.start_element(tag);
                let inner = self.prg.next_range(1, 3).min(total - emitted);
                let s = self.sentence(inner, inner);
                self.w.text(&s);
                emitted += inner;
                self.w.end_element();
            } else {
                self.w.text(" ");
            }
        }
        self.w.end_element();
    }

    // ---- categories / catgraph --------------------------------------------

    fn categories_section(&mut self, end: usize) {
        self.w.start_element("categories");
        // category+ requires at least one.
        self.category();
        while self.w.len() < end {
            self.category();
        }
        self.w.end_element();
    }

    fn category(&mut self) {
        self.categories += 1;
        let id = self.categories;
        self.w.start_element("category");
        self.w.attribute("id", &format!("category{id}"));
        let nm = self.name_string();
        self.leaf("name", &nm);
        self.description(false, 1);
        self.w.end_element();
    }

    fn catgraph(&mut self, end: usize) {
        self.w.start_element("catgraph");
        while self.w.len() < end && self.categories >= 2 {
            let from = self.prg.next_range(1, self.categories as u64);
            let to = self.prg.next_range(1, self.categories as u64);
            self.w.start_element("edge");
            self.w.attribute("from", &format!("category{from}"));
            self.w.attribute("to", &format!("category{to}"));
            self.w.end_element();
        }
        self.w.end_element();
    }

    // ---- people ------------------------------------------------------------

    fn people(&mut self, end: usize) {
        self.w.start_element("people");
        self.person(true); // witness person with an address/city
        while self.w.len() < end {
            self.person(false);
        }
        self.w.end_element();
    }

    fn person(&mut self, force_address: bool) {
        self.persons += 1;
        let id = self.persons;
        self.w.start_element("person");
        self.w.attribute("id", &format!("person{id}"));
        let nm = self.name_string();
        self.leaf("name", &nm);
        let email = format!("mailto:{}@example.net", nm.to_lowercase().replace(' ', "."));
        self.leaf("emailaddress", &email);
        if self.prg.chance(0.5) {
            let ph = format!(
                "+{} ({}) {}",
                self.prg.next_range(1, 99),
                self.prg.next_range(100, 999),
                self.prg.next_range(1_000_000, 9_999_999)
            );
            self.leaf("phone", &ph);
        }
        if force_address || self.prg.chance(0.7) {
            self.address();
        }
        if self.prg.chance(0.3) {
            let hp = format!(
                "http://www.example.net/~{}",
                nm.split(' ').next().unwrap_or("x").to_lowercase()
            );
            self.leaf("homepage", &hp);
        }
        if self.prg.chance(0.4) {
            let cc = format!(
                "{} {} {} {}",
                self.prg.next_range(1000, 9999),
                self.prg.next_range(1000, 9999),
                self.prg.next_range(1000, 9999),
                self.prg.next_range(1000, 9999)
            );
            self.leaf("creditcard", &cc);
        }
        if self.prg.chance(0.6) {
            self.profile();
        }
        if self.prg.chance(0.5) {
            self.w.start_element("watches");
            let n = self.prg.next_range(0, 4);
            for _ in 0..n {
                let oa = self.prg.next_range(1, self.open_auctions.max(1) as u64);
                self.w.start_element("watch");
                self.w
                    .attribute("open_auction", &format!("open_auction{oa}"));
                self.w.end_element();
            }
            self.w.end_element();
        }
        self.w.end_element();
    }

    fn address(&mut self) {
        self.w.start_element("address");
        let street = format!("{} {} St", self.prg.next_range(1, 99), self.name_string());
        self.leaf("street", &street);
        let city = self.word_capitalised();
        self.leaf("city", &city);
        let country = *self.prg.pick(&[
            "United States",
            "Germany",
            "Netherlands",
            "Japan",
            "Malaysia",
        ]);
        self.leaf("country", country);
        if self.prg.chance(0.3) {
            let prov = self.word_capitalised();
            self.leaf("province", &prov);
        }
        let zip = self.prg.next_range(10000, 99999).to_string();
        self.leaf("zipcode", &zip);
        self.w.end_element();
    }

    fn profile(&mut self) {
        self.w.start_element("profile");
        let interests = self.prg.next_range(0, 3);
        for _ in 0..interests {
            let cat = self.prg.next_range(1, self.categories.max(1) as u64);
            self.w.start_element("interest");
            self.w.attribute("category", &format!("category{cat}"));
            self.w.end_element();
        }
        if self.prg.chance(0.5) {
            let edu = *self
                .prg
                .pick(&["High School", "College", "Graduate School", "Other"]);
            self.leaf("education", edu);
        }
        if self.prg.chance(0.7) {
            let g = *self.prg.pick(&["male", "female"]);
            self.leaf("gender", g);
        }
        let b = *self.prg.pick(&["Yes", "No"]);
        self.leaf("business", b);
        if self.prg.chance(0.6) {
            let age = self.prg.next_range(18, 80).to_string();
            self.leaf("age", &age);
        }
        self.w.end_element();
    }

    // ---- auctions -----------------------------------------------------------

    fn open_auctions_section(&mut self, end: usize) {
        self.w.start_element("open_auctions");
        self.open_auction(true); // witness bidder
        while self.w.len() < end {
            self.open_auction(false);
        }
        self.w.end_element();
    }

    fn open_auction(&mut self, force_bidder: bool) {
        self.open_auctions += 1;
        let id = self.open_auctions;
        self.w.start_element("open_auction");
        self.w.attribute("id", &format!("open_auction{id}"));
        let initial = self.money();
        self.leaf("initial", &initial);
        if self.prg.chance(0.4) {
            let r = self.money();
            self.leaf("reserve", &r);
        }
        let bidders = if force_bidder {
            self.prg.next_range(1, 4)
        } else {
            self.prg.next_range(0, 4)
        };
        for _ in 0..bidders {
            self.bidder();
        }
        let cur = self.money();
        self.leaf("current", &cur);
        if self.prg.chance(0.2) {
            self.leaf("privacy", "Yes");
        }
        self.empty_ref("itemref", "item", self.items.max(1));
        self.empty_ref("seller", "person", self.persons.max(1));
        self.annotation();
        let q = self.prg.next_range(1, 10).to_string();
        self.leaf("quantity", &q);
        let ty = *self.prg.pick(&["Regular", "Featured", "Dutch"]);
        self.leaf("type", ty);
        self.w.start_element("interval");
        let st = self.date();
        self.leaf("start", &st);
        let en = self.date();
        self.leaf("end", &en);
        self.w.end_element();
        self.w.end_element();
    }

    fn bidder(&mut self) {
        self.w.start_element("bidder");
        let d = self.date();
        self.leaf("date", &d);
        let t = self.time();
        self.leaf("time", &t);
        self.empty_ref("personref", "person", self.persons.max(1));
        let inc = self.money();
        self.leaf("increase", &inc);
        self.w.end_element();
    }

    fn annotation(&mut self) {
        self.w.start_element("annotation");
        self.empty_ref("author", "person", self.persons.max(1));
        if self.prg.chance(0.6) {
            self.description(false, 1);
        }
        let h = self.prg.next_range(1, 10).to_string();
        self.leaf("happiness", &h);
        self.w.end_element();
    }

    fn closed_auctions_section(&mut self, end: usize) {
        self.w.start_element("closed_auctions");
        self.closed_auction();
        while self.w.len() < end {
            self.closed_auction();
        }
        self.w.end_element();
    }

    fn closed_auction(&mut self) {
        self.w.start_element("closed_auction");
        self.empty_ref("seller", "person", self.persons.max(1));
        self.empty_ref("buyer", "person", self.persons.max(1));
        self.empty_ref("itemref", "item", self.items.max(1));
        let p = self.money();
        self.leaf("price", &p);
        let d = self.date();
        self.leaf("date", &d);
        let q = self.prg.next_range(1, 10).to_string();
        self.leaf("quantity", &q);
        let ty = *self.prg.pick(&["Regular", "Featured", "Dutch"]);
        self.leaf("type", ty);
        if self.prg.chance(0.5) {
            self.annotation();
        }
        self.w.end_element();
    }

    // ---- primitives ----------------------------------------------------------

    fn leaf(&mut self, name: &str, content: &str) {
        self.w.start_element(name);
        self.w.text(content);
        self.w.end_element();
    }

    fn empty_ref(&mut self, element: &str, kind: &str, max_id: u32) {
        let id = self.prg.next_range(1, max_id as u64);
        self.w.start_element(element);
        self.w.attribute(kind, &format!("{kind}{id}"));
        self.w.end_element();
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.prg.next_range(1, 12),
            self.prg.next_range(1, 28),
            self.prg.next_range(1998, 2001)
        )
    }

    fn time(&mut self) -> String {
        format!(
            "{:02}:{:02}:{:02}",
            self.prg.next_range(0, 23),
            self.prg.next_range(0, 59),
            self.prg.next_range(0, 59)
        )
    }

    fn money(&mut self) -> String {
        format!(
            "{}.{:02}",
            self.prg.next_range(1, 500),
            self.prg.next_range(0, 99)
        )
    }

    fn sentence(&mut self, min: u64, max: u64) -> String {
        let n = self.prg.next_range(min, max);
        self.vocab.sentence(&mut self.prg, n as usize)
    }

    fn name_string(&mut self) -> String {
        self.vocab.proper_name(&mut self.prg)
    }

    fn word_capitalised(&mut self) -> String {
        let w = self.vocab.word(&mut self.prg).to_string();
        let mut c = w.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DTD_ELEMENTS;
    use ssx_xml::Document;

    #[test]
    fn generates_valid_xml_at_target_size() {
        let cfg = XmarkConfig {
            seed: 1,
            target_bytes: 64 * 1024,
        };
        let xml = generate(&cfg);
        assert!(
            xml.len() >= 64 * 1024,
            "hit the target ({} bytes)",
            xml.len()
        );
        assert!(
            xml.len() < 64 * 1024 + 16 * 1024,
            "no huge overshoot ({} bytes)",
            xml.len()
        );
        let doc = Document::parse(&xml).expect("well-formed output");
        assert_eq!(doc.name(doc.root()), Some("site"));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = XmarkConfig {
            seed: 7,
            target_bytes: 20_000,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = XmarkConfig {
            seed: 8,
            target_bytes: 20_000,
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn all_tags_in_dtd_universe() {
        let xml = generate(&XmarkConfig {
            seed: 3,
            target_bytes: 120_000,
        });
        let doc = Document::parse(&xml).unwrap();
        for id in doc.descendants(doc.root()) {
            if let Some(name) = doc.name(id) {
                assert!(DTD_ELEMENTS.contains(&name), "tag {name} not in DTD");
            }
        }
    }

    #[test]
    fn witnesses_for_experiment_queries_present() {
        // Even a tiny document must contain the query witnesses.
        let xml = generate(&XmarkConfig {
            seed: 5,
            target_bytes: 4_000,
        });
        let doc = Document::parse(&xml).unwrap();
        let names: std::collections::HashSet<&str> = doc
            .descendants(doc.root())
            .into_iter()
            .filter_map(|id| doc.name(id))
            .collect();
        for needed in [
            "site",
            "regions",
            "europe",
            "item",
            "description",
            "parlist",
            "listitem",
            "text",
            "keyword",
            "people",
            "person",
            "address",
            "city",
            "open_auctions",
            "open_auction",
            "bidder",
            "date",
            "closed_auctions",
            "closed_auction",
        ] {
            assert!(names.contains(needed), "missing witness element {needed}");
        }
    }

    #[test]
    fn table1_chain_query_has_matches() {
        // /site/regions/europe/item/description/parlist/listitem/text/keyword
        let xml = generate(&XmarkConfig {
            seed: 11,
            target_bytes: 8_000,
        });
        let doc = Document::parse(&xml).unwrap();
        let mut frontier = vec![doc.root()];
        for (i, step) in [
            "regions",
            "europe",
            "item",
            "description",
            "parlist",
            "listitem",
            "text",
            "keyword",
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                doc.name(frontier[0]),
                if i == 0 {
                    Some("site")
                } else {
                    doc.name(frontier[0])
                }
            );
            let mut next = Vec::new();
            for &f in &frontier {
                next.extend(doc.child_elements(f).filter(|&c| doc.name(c) == Some(step)));
            }
            assert!(!next.is_empty(), "no {step} nodes at chain depth {}", i + 1);
            frontier = next;
        }
    }

    #[test]
    fn size_scales_roughly_linearly() {
        let small = generate(&XmarkConfig {
            seed: 9,
            target_bytes: 30_000,
        })
        .len() as f64;
        let large = generate(&XmarkConfig {
            seed: 9,
            target_bytes: 120_000,
        })
        .len() as f64;
        let ratio = large / small;
        assert!(
            (3.0..5.5).contains(&ratio),
            "4x target should give ~4x bytes, got {ratio}"
        );
    }
}
