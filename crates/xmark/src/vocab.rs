//! Synthetic vocabulary with Zipf-like sampling.
//!
//! Substitutes for XMark's Shakespeare word list. Words are built from
//! consonant-vowel syllables (pronounceable, 2–4 syllables); sampling weight
//! of rank `r` is `1/(r+1)`, giving the heavy word-repetition natural text
//! has — which is what the §4 dedup/trie statistics depend on.

use ssx_prg::Prg;

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u"];

/// A fixed list of distinct words plus a cumulative Zipf table.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative weights scaled to u64 for integer sampling.
    cumulative: Vec<u64>,
}

impl Vocabulary {
    /// Builds `size` distinct words with classic Zipf weights `1/(r+1)`.
    pub fn new(prg: &mut Prg, size: usize) -> Self {
        Self::with_exponent(prg, size, 1.0)
    }

    /// Builds `size` distinct words with weights `1/(r+1)^alpha`. Smaller
    /// `alpha` flattens the distribution (more distinct words per corpus) —
    /// the knob that calibrates the §4 dedup statistics against natural
    /// text.
    pub fn with_exponent(prg: &mut Prg, size: usize, alpha: f64) -> Self {
        assert!(size > 0, "empty vocabulary");
        let mut words = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::new();
        while words.len() < size {
            let syllables = prg.next_range(2, 4);
            let mut w = String::new();
            for _ in 0..syllables {
                let onset = *prg.pick(CONSONANTS);
                w.push_str(onset);
                let nucleus = *prg.pick(VOWELS);
                w.push_str(nucleus);
                if prg.chance(0.2) {
                    let coda = *prg.pick(CONSONANTS);
                    w.push_str(coda);
                }
            }
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        // Fixed-point cumulative weights at 1e6.
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0u64;
        for r in 0..size {
            acc += (1_000_000.0 / (r as f64 + 1.0).powf(alpha)).max(1.0) as u64;
            cumulative.push(acc);
        }
        Vocabulary { words, cumulative }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Vocabularies are never empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Draws one word with Zipf weighting.
    pub fn word<'a>(&'a self, prg: &mut Prg) -> &'a str {
        let total = *self.cumulative.last().expect("non-empty");
        let x = prg.next_below(total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        &self.words[idx.min(self.words.len() - 1)]
    }

    /// Draws a sentence of `n` words separated by single spaces.
    pub fn sentence(&self, prg: &mut Prg, n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word(prg));
        }
        out
    }

    /// A proper-noun-ish name (capitalised word pair) for people/items.
    pub fn proper_name(&self, prg: &mut Prg) -> String {
        let cap = |w: &str| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        };
        format!("{} {}", cap(self.word(prg)), cap(self.word(prg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Vocabulary::new(&mut Prg::from_u64(1), 100);
        let b = Vocabulary::new(&mut Prg::from_u64(1), 100);
        assert_eq!(a.words, b.words);
    }

    #[test]
    fn distinct_words() {
        let v = Vocabulary::new(&mut Prg::from_u64(2), 300);
        let mut sorted = v.words.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 300);
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let v = Vocabulary::new(&mut Prg::from_u64(3), 200);
        let mut prg = Prg::from_u64(4);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..20_000 {
            let w = v.word(&mut prg);
            let rank = v.words.iter().position(|x| x == w).unwrap();
            if rank < 20 {
                head += 1;
            } else if rank >= 100 {
                tail += 1;
            }
        }
        assert!(head > tail * 2, "head {head} should dominate tail {tail}");
    }

    #[test]
    fn sentences_have_n_words() {
        let v = Vocabulary::new(&mut Prg::from_u64(5), 50);
        let mut prg = Prg::from_u64(6);
        let s = v.sentence(&mut prg, 7);
        assert_eq!(s.split(' ').count(), 7);
        assert!(!s.contains("  "));
    }

    #[test]
    fn proper_names_capitalised() {
        let v = Vocabulary::new(&mut Prg::from_u64(7), 50);
        let mut prg = Prg::from_u64(8);
        let name = v.proper_name(&mut prg);
        let parts: Vec<&str> = name.split(' ').collect();
        assert_eq!(parts.len(), 2);
        for p in parts {
            assert!(p.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let v = Vocabulary::new(&mut Prg::from_u64(9), 100);
        for w in &v.words {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 4, "2 syllables minimum: {w}");
        }
    }
}
