#![warn(missing_docs)]

//! Deterministic XMark-style auction document generator.
//!
//! The paper's experiments (§6) "act on an auction database synthesized by
//! the XMark benchmark" whose DTD (appendix A) declares exactly 77 elements.
//! The original `xmlgen` C program is not redistributable here, so this
//! crate is a faithful substitute (see DESIGN.md): it emits documents
//! conforming to that DTD, with
//!
//! * the same element vocabulary ([`DTD_ELEMENTS`], all 77 names),
//! * realistic proportions between regions / people / auctions,
//! * a byte-size target so the Fig 4 sweep (1–10 MB inputs) reproduces, and
//! * full determinism (seeded by [`ssx_prg::Prg`]) so every experiment is
//!   repeatable bit-for-bit.
//!
//! Prose is synthesised from a Zipf-weighted syllable vocabulary instead of
//! the original Shakespeare word list; the trie-compression statistics stay
//! meaningful because what matters there is word-length and repetition
//! structure, not English spelling.

pub mod gen;
pub mod vocab;

pub use gen::{generate, XmarkConfig};
pub use vocab::Vocabulary;

/// All 77 element names declared by the appendix-A DTD, in declaration
/// order. This is the tag universe the map file must cover (`p = 83 > 77`).
pub const DTD_ELEMENTS: [&str; 77] = [
    "site",
    "categories",
    "category",
    "name",
    "description",
    "text",
    "bold",
    "keyword",
    "emph",
    "parlist",
    "listitem",
    "catgraph",
    "edge",
    "regions",
    "africa",
    "asia",
    "australia",
    "namerica",
    "samerica",
    "europe",
    "item",
    "location",
    "quantity",
    "payment",
    "shipping",
    "reserve",
    "incategory",
    "mailbox",
    "mail",
    "from",
    "to",
    "date",
    "itemref",
    "personref",
    "people",
    "person",
    "emailaddress",
    "phone",
    "address",
    "street",
    "city",
    "province",
    "zipcode",
    "country",
    "homepage",
    "creditcard",
    "profile",
    "interest",
    "education",
    "income",
    "gender",
    "business",
    "age",
    "watches",
    "watch",
    "open_auctions",
    "open_auction",
    "privacy",
    "initial",
    "bidder",
    "seller",
    "current",
    "increase",
    "type",
    "interval",
    "start",
    "end",
    "time",
    "status",
    "amount",
    "closed_auctions",
    "closed_auction",
    "buyer",
    "price",
    "annotation",
    "author",
    "happiness",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_census_is_77() {
        assert_eq!(
            DTD_ELEMENTS.len(),
            77,
            "the paper: 'The DTD contains 77 elements'"
        );
        let mut sorted: Vec<&str> = DTD_ELEMENTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 77, "no duplicates");
    }
}
