//! Validates generated documents against the appendix-A DTD content models.
//!
//! A small hand-rolled validator: for each element with a *sequence* content
//! model the child-element sequence must match the declared pattern
//! (`?` optional, `*`/`+` repetition); choice models and mixed content are
//! checked structurally (allowed child set).

use ssx_xmark::{generate, XmarkConfig};
use ssx_xml::{Document, NodeId};

/// One token of a sequence content model.
#[derive(Clone, Copy)]
enum Tok {
    One(&'static str),
    Opt(&'static str),
    Star(&'static str),
    Plus(&'static str),
}
use Tok::*;

/// Matches a child-name sequence against a model, greedily (sufficient for
/// these DTDs: no adjacent tokens share an element name).
fn matches_seq(children: &[&str], model: &[Tok]) -> bool {
    let mut i = 0;
    for tok in model {
        match *tok {
            One(name) => {
                if i < children.len() && children[i] == name {
                    i += 1;
                } else {
                    return false;
                }
            }
            Opt(name) => {
                if i < children.len() && children[i] == name {
                    i += 1;
                }
            }
            Star(name) => {
                while i < children.len() && children[i] == name {
                    i += 1;
                }
            }
            Plus(name) => {
                if i >= children.len() || children[i] != name {
                    return false;
                }
                while i < children.len() && children[i] == name {
                    i += 1;
                }
            }
        }
    }
    i == children.len()
}

fn child_names(doc: &Document, id: NodeId) -> Vec<&str> {
    doc.child_elements(id).filter_map(|c| doc.name(c)).collect()
}

/// Sequence content models from the appendix-A DTD (the structural ones the
/// generator must honour exactly).
fn sequence_model(name: &str) -> Option<Vec<Tok>> {
    Some(match name {
        "site" => vec![
            One("regions"),
            One("categories"),
            One("catgraph"),
            One("people"),
            One("open_auctions"),
            One("closed_auctions"),
        ],
        "regions" => vec![
            One("africa"),
            One("asia"),
            One("australia"),
            One("europe"),
            One("namerica"),
            One("samerica"),
        ],
        "africa" | "asia" | "australia" | "europe" | "namerica" | "samerica" => {
            vec![Star("item")]
        }
        "item" => vec![
            One("location"),
            One("quantity"),
            One("name"),
            One("payment"),
            One("description"),
            One("shipping"),
            Plus("incategory"),
            One("mailbox"),
        ],
        "categories" => vec![Plus("category")],
        "category" => vec![One("name"), One("description")],
        "catgraph" => vec![Star("edge")],
        "people" => vec![Star("person")],
        "person" => vec![
            One("name"),
            One("emailaddress"),
            Opt("phone"),
            Opt("address"),
            Opt("homepage"),
            Opt("creditcard"),
            Opt("profile"),
            Opt("watches"),
        ],
        "address" => vec![
            One("street"),
            One("city"),
            One("country"),
            Opt("province"),
            One("zipcode"),
        ],
        "profile" => vec![
            Star("interest"),
            Opt("education"),
            Opt("gender"),
            One("business"),
            Opt("age"),
        ],
        "watches" => vec![Star("watch")],
        "mailbox" => vec![Star("mail")],
        "mail" => vec![One("from"), One("to"), One("date"), One("text")],
        "open_auctions" => vec![Star("open_auction")],
        "open_auction" => vec![
            One("initial"),
            Opt("reserve"),
            Star("bidder"),
            One("current"),
            Opt("privacy"),
            One("itemref"),
            One("seller"),
            One("annotation"),
            One("quantity"),
            One("type"),
            One("interval"),
        ],
        "bidder" => vec![One("date"), One("time"), One("personref"), One("increase")],
        "interval" => vec![One("start"), One("end")],
        "annotation" => vec![One("author"), Opt("description"), One("happiness")],
        "closed_auctions" => vec![Star("closed_auction")],
        "closed_auction" => vec![
            One("seller"),
            One("buyer"),
            One("itemref"),
            One("price"),
            One("date"),
            One("quantity"),
            One("type"),
            Opt("annotation"),
        ],
        _ => return None,
    })
}

/// Choice / mixed content models: the allowed child-element sets.
fn allowed_children(name: &str) -> Option<&'static [&'static str]> {
    Some(match name {
        "description" => &["text", "parlist"],
        "parlist" => &["listitem"],
        "listitem" => &["text", "parlist"],
        "text" | "bold" | "keyword" | "emph" => &["bold", "keyword", "emph"],
        _ => return None,
    })
}

/// Elements declared EMPTY (must have no element children or text).
const EMPTY_ELEMENTS: [&str; 9] = [
    "edge",
    "incategory",
    "itemref",
    "personref",
    "seller",
    "buyer",
    "author",
    "interest",
    "watch",
];

#[test]
fn generated_documents_conform_to_the_dtd() {
    for (seed, bytes) in [(1u64, 30_000usize), (2, 120_000), (99, 8_000)] {
        let xml = generate(&XmarkConfig {
            seed,
            target_bytes: bytes,
        });
        let doc = Document::parse(&xml).unwrap();
        let mut checked = 0usize;
        for id in doc.descendants(doc.root()) {
            let Some(name) = doc.name(id) else { continue };
            let kids = child_names(&doc, id);
            if let Some(model) = sequence_model(name) {
                assert!(
                    matches_seq(&kids, &model),
                    "seed {seed}: <{name}> children {kids:?} violate its content model"
                );
                checked += 1;
            } else if let Some(allowed) = allowed_children(name) {
                for k in &kids {
                    assert!(
                        allowed.contains(k),
                        "seed {seed}: <{name}> may not contain <{k}>"
                    );
                }
                checked += 1;
            } else if EMPTY_ELEMENTS.contains(&name) {
                assert!(
                    doc.children(id).is_empty(),
                    "seed {seed}: EMPTY element <{name}> has children"
                );
                checked += 1;
            }
            // Remaining elements are #PCDATA leaves; nothing to check
            // structurally.
        }
        assert!(checked > 50, "validator exercised only {checked} nodes");
    }
}

#[test]
fn pcdata_leaves_have_no_element_children() {
    let xml = generate(&XmarkConfig {
        seed: 7,
        target_bytes: 40_000,
    });
    let doc = Document::parse(&xml).unwrap();
    let pcdata_only = [
        "location",
        "quantity",
        "payment",
        "shipping",
        "from",
        "to",
        "date",
        "name",
        "emailaddress",
        "phone",
        "street",
        "city",
        "province",
        "zipcode",
        "country",
        "homepage",
        "creditcard",
        "education",
        "gender",
        "business",
        "age",
        "privacy",
        "initial",
        "current",
        "increase",
        "type",
        "start",
        "end",
        "time",
        "price",
        "happiness",
        "reserve",
    ];
    for id in doc.descendants(doc.root()) {
        if let Some(name) = doc.name(id) {
            if pcdata_only.contains(&name) {
                assert_eq!(
                    doc.child_elements(id).count(),
                    0,
                    "<{name}> must be a text-only leaf"
                );
            }
        }
    }
}

#[test]
fn sequence_matcher_sanity() {
    assert!(matches_seq(&["a", "b"], &[One("a"), One("b")]));
    assert!(!matches_seq(&["b", "a"], &[One("a"), One("b")]));
    assert!(matches_seq(&["a"], &[One("a"), Opt("b")]));
    assert!(matches_seq(&[], &[Star("x")]));
    assert!(!matches_seq(&[], &[Plus("x")]));
    assert!(matches_seq(&["x", "x", "x"], &[Plus("x")]));
    assert!(!matches_seq(&["x", "y"], &[Star("x")]));
}
