//! Statistical quality checks on the PRG — the properties the
//! secret-sharing layer actually relies on.

use ssx_prg::{node_prg, Prg, Seed};

/// Counts bit differences between two u64s.
fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[test]
fn adjacent_node_streams_have_avalanche() {
    // Streams for pre and pre+1 should differ in ~32 of 64 bits on average:
    // the location is mixed through splitmix64, not merely added.
    let seed = Seed::from_test_key(1);
    let mut total = 0u64;
    let n = 2000u64;
    for pre in 1..=n {
        let a = node_prg(&seed, pre).next_u64();
        let b = node_prg(&seed, pre + 1).next_u64();
        total += hamming(a, b) as u64;
    }
    let avg = total as f64 / n as f64;
    assert!(
        (28.0..36.0).contains(&avg),
        "avalanche average {avg} (want ~32)"
    );
}

#[test]
fn seed_bit_flip_decorrelates_all_nodes() {
    let mut bytes = [0x5au8; 32];
    let seed_a = Seed::from_bytes(bytes);
    bytes[17] ^= 0x01; // single-bit change
    let seed_b = Seed::from_bytes(bytes);
    let mut total = 0u64;
    let n = 1000u64;
    for pre in 1..=n {
        let a = node_prg(&seed_a, pre).next_u64();
        let b = node_prg(&seed_b, pre).next_u64();
        total += hamming(a, b) as u64;
    }
    let avg = total as f64 / n as f64;
    assert!((28.0..36.0).contains(&avg), "seed avalanche {avg}");
}

#[test]
fn stream_bits_are_balanced() {
    let mut prg = Prg::from_u64(7);
    let mut ones = 0u64;
    let draws = 10_000;
    for _ in 0..draws {
        ones += prg.next_u64().count_ones() as u64;
    }
    let frac = ones as f64 / (draws as f64 * 64.0);
    assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
}

#[test]
fn serial_correlation_is_low() {
    // Lag-1 correlation of the high bit across a long run.
    let mut prg = Prg::from_u64(99);
    let mut prev = prg.next_u64() >> 63;
    let mut agree = 0u64;
    let n = 20_000u64;
    for _ in 0..n {
        let cur = prg.next_u64() >> 63;
        if cur == prev {
            agree += 1;
        }
        prev = cur;
    }
    let frac = agree as f64 / n as f64;
    assert!((0.48..0.52).contains(&frac), "lag-1 agreement {frac}");
}

#[test]
fn next_below_large_bounds() {
    let mut prg = Prg::from_u64(3);
    // Near-maximum bound exercises the rejection path repeatedly.
    let bound = (1u64 << 63) + 3;
    for _ in 0..1000 {
        assert!(prg.next_below(bound) < bound);
    }
    // Power-of-two bound never rejects.
    for _ in 0..1000 {
        assert!(prg.next_below(1 << 32) < (1 << 32));
    }
}

#[test]
fn node_streams_are_pairwise_distinct_over_a_large_range() {
    let seed = Seed::from_test_key(42);
    let mut firsts = std::collections::HashSet::new();
    for pre in 1..=100_000u64 {
        let v = node_prg(&seed, pre).next_u64();
        assert!(firsts.insert(v), "collision of first outputs at pre={pre}");
    }
}

#[test]
fn chance_respects_probability() {
    let mut prg = Prg::from_u64(11);
    let n = 50_000;
    let hits = (0..n).filter(|_| prg.chance(0.3)).count();
    let frac = hits as f64 / n as f64;
    assert!((0.28..0.32).contains(&frac), "chance(0.3) hit rate {frac}");
    // Degenerate probabilities.
    assert!(!(0..100).any(|_| prg.chance(0.0)));
    assert!((0..100).all(|_| prg.chance(1.1)));
}
