//! The generator core: splitmix64 seeding + xoshiro256** stream.

use crate::seed::Seed;

/// splitmix64 step; used for seeding and key mixing. Passes through every
/// 64-bit state exactly once, so distinct inputs give distinct outputs.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudorandom stream (xoshiro256**).
///
/// Instances are cheap (32 bytes of state, no allocation) so one is created
/// per node-share regeneration.
#[derive(Clone, Debug)]
pub struct Prg {
    s: [u64; 4],
}

impl Prg {
    /// Creates a stream from a 64-bit key via splitmix64 expansion.
    pub fn from_u64(key: u64) -> Self {
        let mut sm = key;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prg { s }
    }

    /// Creates a stream from a full 32-byte seed.
    pub fn from_seed(seed: &Seed) -> Self {
        let b = seed.bytes();
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(w);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        // One warm-up mixing pass so low-entropy seeds still diffuse.
        let mut prg = Prg { s };
        for _ in 0..4 {
            prg.next_u64();
        }
        prg
    }

    /// Next 64 pseudorandom bits (xoshiro256** update).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` by rejection sampling over a bitmask —
    /// unbiased and deterministic across platforms. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        if bound == 1 {
            return 0;
        }
        let mask = u64::MAX >> (bound - 1).leading_zeros();
        loop {
            let v = self.next_u64() & mask;
            if v < bound {
                return v;
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive). Panics when `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

/// Derives the per-node stream `PRG(seed, pre)` used to (re)generate the
/// client share of the node stored at pre-order position `pre`.
///
/// The derivation hashes the seed words and the location through splitmix64
/// so that adjacent locations yield unrelated streams.
pub fn node_prg(seed: &Seed, pre: u64) -> Prg {
    let b = seed.bytes();
    let mut acc = 0x6A09_E667_F3BC_C908u64; // sqrt(2) fractional bits
    for chunk in b.chunks_exact(8) {
        let mut w = [0u8; 8];
        w.copy_from_slice(chunk);
        acc ^= u64::from_le_bytes(w);
        acc = splitmix64(&mut acc);
    }
    acc ^= pre.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut acc);
    Prg::from_u64(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let mut a = Prg::from_u64(42);
        let mut b = Prg::from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = Prg::from_u64(1);
        let mut b = Prg::from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn node_streams_are_location_dependent() {
        let seed = Seed::from_bytes([7u8; 32]);
        let mut s1 = node_prg(&seed, 1);
        let mut s2 = node_prg(&seed, 2);
        assert_ne!(s1.next_u64(), s2.next_u64());
        // And reproducible.
        let mut s1b = node_prg(&seed, 1);
        let mut s1c = node_prg(&seed, 1);
        for _ in 0..32 {
            assert_eq!(s1b.next_u64(), s1c.next_u64());
        }
    }

    #[test]
    fn bounded_sampling_is_in_range_and_covers() {
        let mut prg = Prg::from_u64(9);
        let mut seen = [false; 83];
        for _ in 0..5000 {
            let v = prg.next_below(83);
            assert!(v < 83);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "5000 draws should cover F_83");
    }

    #[test]
    fn bounded_sampling_roughly_uniform() {
        let mut prg = Prg::from_u64(1234);
        let n = 83u64;
        let draws = 83_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..draws {
            counts[prg.next_below(n) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        // Chi-squared statistic; df = 82, the 99.9% quantile is ~124.8.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 130.0, "chi2 = {chi2} suggests bias");
    }

    #[test]
    fn range_and_pick_helpers() {
        let mut prg = Prg::from_u64(5);
        for _ in 0..100 {
            let v = prg.next_range(10, 12);
            assert!((10..=12).contains(&v));
        }
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(prg.pick(&items)));
        }
        assert_eq!(prg.next_below(1), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut prg = Prg::from_u64(77);
        for _ in 0..1000 {
            let v = prg.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
