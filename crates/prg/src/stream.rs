//! The generator core: splitmix64 seeding + xoshiro256** stream.

use crate::seed::Seed;

/// splitmix64 step; used for seeding and key mixing. Passes through every
/// 64-bit state exactly once, so distinct inputs give distinct outputs.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudorandom stream (xoshiro256**).
///
/// Instances are cheap (32 bytes of state, no allocation) so one is created
/// per node-share regeneration.
#[derive(Clone, Debug)]
pub struct Prg {
    s: [u64; 4],
}

impl Prg {
    /// Creates a stream from a 64-bit key via splitmix64 expansion.
    pub fn from_u64(key: u64) -> Self {
        let mut sm = key;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prg { s }
    }

    /// Creates a stream from a full 32-byte seed.
    pub fn from_seed(seed: &Seed) -> Self {
        let b = seed.bytes();
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(w);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        // One warm-up mixing pass so low-entropy seeds still diffuse.
        let mut prg = Prg { s };
        for _ in 0..4 {
            prg.next_u64();
        }
        prg
    }

    /// Next 64 pseudorandom bits (xoshiro256** update).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` by rejection sampling over a bitmask —
    /// unbiased and deterministic across platforms. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        if bound == 1 {
            return 0;
        }
        let mask = u64::MAX >> (bound - 1).leading_zeros();
        loop {
            let v = self.next_u64() & mask;
            if v < bound {
                return v;
            }
        }
    }

    /// Fills `out` with uniform values in `[0, bound)` by **lane-packed
    /// rejection sampling**: each 64-bit draw is cut into `⌊64/w⌋` lanes of
    /// `w = bits(bound − 1)` bits (least-significant lane first) and every
    /// lane below `bound` is accepted in order. Each lane is an independent
    /// uniform `w`-bit value, so acceptance is exactly the classic masked
    /// rejection — but one generator step now feeds many candidates, and the
    /// accept test compiles to a branchless increment. For `F_83` rows this
    /// is ~9 candidates per `next_u64` instead of 1.
    ///
    /// The stream is deterministic and platform-independent but it is NOT
    /// the stream of repeated [`Prg::next_below`] calls: bulk and scalar
    /// sampling are distinct, stable sub-protocols. Share (re)generation
    /// uses the bulk protocol on both sides of every split, which is all the
    /// scheme's determinism needs. Panics if `bound == 0`.
    pub fn fill_below(&mut self, bound: u64, out: &mut [u64]) {
        assert!(bound > 0, "fill_below(0)");
        if bound == 1 {
            out.fill(0);
            return;
        }
        let width = 64 - (bound - 1).leading_zeros();
        // Compile-time lane widths for the hot bounds (the shift amounts
        // become constants and the lane loop fully unrolls); every arm
        // produces the same stream as the generic fallback.
        match width {
            7 => self.fill_below_lanes::<7, 9>(bound, out), // F_83 share rows
            1 => self.fill_below_lanes::<1, 64>(bound, out),
            8 => self.fill_below_lanes::<8, 8>(bound, out),
            _ => self.fill_below_lanes_dyn(bound, width as usize, out),
        }
    }

    /// Lane-packed sampling body with compile-time lane geometry.
    /// `LANES` must equal `64 / W`.
    fn fill_below_lanes<const W: u32, const LANES: usize>(&mut self, bound: u64, out: &mut [u64]) {
        debug_assert_eq!(LANES, 64 / W as usize);
        let mask = u64::MAX >> (64 - W);
        let len = out.len();
        let mut pos = 0usize;
        // Bulk region: a full word's lanes can never overrun `out`, so the
        // accept is an unconditional store plus a branchless bump.
        while pos + LANES <= len {
            let w = self.next_u64();
            for lane in 0..LANES {
                let v = (w >> (lane as u32 * W)) & mask;
                out[pos] = v;
                pos += usize::from(v < bound);
            }
        }
        // Tail: same lane order, guarded against both ends.
        while pos < len {
            let w = self.next_u64();
            for lane in 0..LANES {
                let v = (w >> (lane as u32 * W)) & mask;
                if v < bound {
                    out[pos] = v;
                    pos += 1;
                    if pos == len {
                        break;
                    }
                }
            }
        }
    }

    /// Runtime-width fallback of [`Prg::fill_below_lanes`] — identical
    /// stream, used for bounds without a specialised arm.
    fn fill_below_lanes_dyn(&mut self, bound: u64, width: usize, out: &mut [u64]) {
        let mask = u64::MAX >> (64 - width);
        let lanes = 64 / width;
        let len = out.len();
        let mut pos = 0usize;
        while pos + lanes <= len {
            let w = self.next_u64();
            for lane in 0..lanes {
                let v = (w >> (lane * width)) & mask;
                out[pos] = v;
                pos += usize::from(v < bound);
            }
        }
        while pos < len {
            let w = self.next_u64();
            for lane in 0..lanes {
                let v = (w >> (lane * width)) & mask;
                if v < bound {
                    out[pos] = v;
                    pos += 1;
                    if pos == len {
                        break;
                    }
                }
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive). Panics when `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

/// Derives the per-node stream `PRG(seed, pre)` used to (re)generate the
/// client share of the node stored at pre-order position `pre`.
///
/// The derivation hashes the seed words and the location through splitmix64
/// so that adjacent locations yield unrelated streams. Equivalent to
/// [`node_prg_from_digest`] over [`seed_digest`]; bulk producers hoist the
/// digest out of their per-node loop.
pub fn node_prg(seed: &Seed, pre: u64) -> Prg {
    node_prg_from_digest(seed_digest(seed), pre)
}

/// The seed-only half of the [`node_prg`] derivation: the splitmix64 chain
/// over the seed words. Compute once per document, then derive per-node
/// streams with [`node_prg_from_digest`].
pub fn seed_digest(seed: &Seed) -> u64 {
    let b = seed.bytes();
    let mut acc = 0x6A09_E667_F3BC_C908u64; // sqrt(2) fractional bits
    for chunk in b.chunks_exact(8) {
        let mut w = [0u8; 8];
        w.copy_from_slice(chunk);
        acc ^= u64::from_le_bytes(w);
        acc = splitmix64(&mut acc);
    }
    acc
}

/// Location half of the [`node_prg`] derivation; `digest` must come from
/// [`seed_digest`].
pub fn node_prg_from_digest(digest: u64, pre: u64) -> Prg {
    let mut acc = digest ^ pre.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut acc);
    Prg::from_u64(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let mut a = Prg::from_u64(42);
        let mut b = Prg::from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = Prg::from_u64(1);
        let mut b = Prg::from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn node_streams_are_location_dependent() {
        let seed = Seed::from_bytes([7u8; 32]);
        let mut s1 = node_prg(&seed, 1);
        let mut s2 = node_prg(&seed, 2);
        assert_ne!(s1.next_u64(), s2.next_u64());
        // And reproducible.
        let mut s1b = node_prg(&seed, 1);
        let mut s1c = node_prg(&seed, 1);
        for _ in 0..32 {
            assert_eq!(s1b.next_u64(), s1c.next_u64());
        }
    }

    #[test]
    fn bounded_sampling_is_in_range_and_covers() {
        let mut prg = Prg::from_u64(9);
        let mut seen = [false; 83];
        for _ in 0..5000 {
            let v = prg.next_below(83);
            assert!(v < 83);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "5000 draws should cover F_83");
    }

    #[test]
    fn bounded_sampling_roughly_uniform() {
        let mut prg = Prg::from_u64(1234);
        let n = 83u64;
        let draws = 83_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..draws {
            counts[prg.next_below(n) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        // Chi-squared statistic; df = 82, the 99.9% quantile is ~124.8.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 130.0, "chi2 = {chi2} suggests bias");
    }

    #[test]
    fn range_and_pick_helpers() {
        let mut prg = Prg::from_u64(5);
        for _ in 0..100 {
            let v = prg.next_range(10, 12);
            assert!((10..=12).contains(&v));
        }
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(prg.pick(&items)));
        }
        assert_eq!(prg.next_below(1), 0);
    }

    #[test]
    fn fill_below_matches_lane_model() {
        // fill_below is pinned to the lane-packed protocol: split each
        // next_u64 into ⌊64/w⌋ lanes of w = bits(bound−1), least-significant
        // first, accept lanes < bound in order. A straightforward model
        // implementation must agree on output AND on how many words are
        // consumed (the post-state), for bounds with and without rejection
        // and lengths around the encode row size.
        for bound in [1u64, 2, 5, 64, 83, 100] {
            for len in [0usize, 1, 7, 82, 100] {
                let mut a = Prg::from_u64(42);
                let mut bulk = vec![0u64; len];
                a.fill_below(bound, &mut bulk);
                let mut b = Prg::from_u64(42);
                let model: Vec<u64> = if bound == 1 {
                    vec![0; len]
                } else {
                    let width = 64 - (bound - 1).leading_zeros() as usize;
                    let mut vals = Vec::with_capacity(len);
                    while vals.len() < len {
                        let w = b.next_u64();
                        for lane in 0..64 / width {
                            let v = (w >> (lane * width)) & (u64::MAX >> (64 - width));
                            if v < bound && vals.len() < len {
                                vals.push(v);
                            }
                        }
                    }
                    vals
                };
                assert_eq!(bulk, model, "bound={bound} len={len}");
                assert!(bulk.iter().all(|&v| v < bound));
                // Both generators must be left in the same state.
                assert_eq!(a.next_u64(), b.next_u64(), "bound={bound} len={len}");
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut prg = Prg::from_u64(77);
        for _ in 0..1000 {
            let v = prg.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
