#![warn(missing_docs)]

//! Deterministic pseudorandom generation for the secret-sharing scheme.
//!
//! In the paper (§3 steps 3–4, §5.2) the client's share of every node
//! polynomial is produced by a pseudorandom generator so that the client only
//! has to store a small *seed file*; whenever a query touches node `pre`, the
//! client regenerates exactly that node's share from `(seed, pre)`.
//!
//! This crate provides that machinery:
//!
//! * [`Prg`] — a fast deterministic stream (xoshiro256** seeded via
//!   splitmix64) with helpers for unbiased bounded sampling.
//! * [`Seed`] — a 32-byte master key with hex/file serialisation (the
//!   paper's "seed file", which *is* the encryption key).
//! * [`node_prg`] — the keyed derivation `PRG(seed, pre)` used for share
//!   regeneration. Distinct `pre` values give statistically independent
//!   streams.
//!
//! **Security note (documented substitution).** The Java prototype used an
//! unspecified PRG; ours is a high-quality *non-cryptographic* generator.
//! The code path exercised — regenerate a node share from `(seed, location)`
//! deterministically — is identical to what a cryptographic PRF would
//! provide. The original scheme has known cryptanalytic weaknesses
//! regardless (see DESIGN.md).

mod seed;
mod stream;

pub use seed::{Seed, SeedError, SEED_BYTES};
pub use stream::{node_prg, node_prg_from_digest, seed_digest, Prg};
