//! The master seed — the paper's "seed file".
//!
//! > "The seed file acts as the encryption key and should therefore be kept
//! > secure. Without the seed file it is impossible to regenerate the client
//! > tree, and without the client tree the data on the server is
//! > meaningless." (§5.1)

use std::fmt;
use std::path::Path;

/// Length of a master seed in bytes.
pub const SEED_BYTES: usize = 32;

/// Errors from parsing or loading a seed.
#[derive(Debug)]
pub enum SeedError {
    /// Hex string had the wrong length or invalid characters.
    BadHex(String),
    /// Underlying file I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedError::BadHex(s) => write!(f, "invalid seed hex: {s}"),
            SeedError::Io(e) => write!(f, "seed file I/O error: {e}"),
        }
    }
}

impl std::error::Error for SeedError {}

impl From<std::io::Error> for SeedError {
    fn from(e: std::io::Error) -> Self {
        SeedError::Io(e)
    }
}

/// A 32-byte master seed. Equality is exact; `Debug` redacts the contents so
/// seeds do not leak into logs.
#[derive(Clone, PartialEq, Eq)]
pub struct Seed {
    bytes: [u8; SEED_BYTES],
}

impl fmt::Debug for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seed(<redacted>)")
    }
}

impl Seed {
    /// Wraps raw bytes as a seed.
    pub fn from_bytes(bytes: [u8; SEED_BYTES]) -> Self {
        Seed { bytes }
    }

    /// Derives a seed deterministically from a low-entropy test key. Not for
    /// production use; convenient in examples and benchmarks.
    pub fn from_test_key(key: u64) -> Self {
        let mut bytes = [0u8; SEED_BYTES];
        let mut state = key ^ 0x5851_F42D_4C95_7F2D;
        for chunk in bytes.chunks_exact_mut(8) {
            let v = crate::stream::splitmix64(&mut state);
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        Seed { bytes }
    }

    /// Raw byte view.
    pub fn bytes(&self) -> &[u8; SEED_BYTES] {
        &self.bytes
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(SEED_BYTES * 2);
        for b in self.bytes {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses the 64-character hex encoding (case-insensitive, surrounding
    /// whitespace ignored).
    pub fn from_hex(hex: &str) -> Result<Self, SeedError> {
        let hex = hex.trim();
        if hex.len() != SEED_BYTES * 2 {
            return Err(SeedError::BadHex(format!(
                "expected {} hex chars, got {}",
                SEED_BYTES * 2,
                hex.len()
            )));
        }
        let mut bytes = [0u8; SEED_BYTES];
        for (i, chunk) in hex.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char)
                .to_digit(16)
                .ok_or_else(|| SeedError::BadHex(hex.to_string()))?;
            let lo = (chunk[1] as char)
                .to_digit(16)
                .ok_or_else(|| SeedError::BadHex(hex.to_string()))?;
            bytes[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Seed { bytes })
    }

    /// Loads a seed file (hex encoding produced by [`Seed::save`]).
    pub fn load(path: &Path) -> Result<Self, SeedError> {
        let text = std::fs::read_to_string(path)?;
        Seed::from_hex(&text)
    }

    /// Saves the hex encoding to a file.
    pub fn save(&self, path: &Path) -> Result<(), SeedError> {
        std::fs::write(path, self.to_hex())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let seed = Seed::from_test_key(123);
        let hex = seed.to_hex();
        assert_eq!(hex.len(), 64);
        let back = Seed::from_hex(&hex).unwrap();
        assert_eq!(back, seed);
        // Case and whitespace tolerated.
        let upper = format!("  {}\n", hex.to_uppercase());
        assert_eq!(Seed::from_hex(&upper).unwrap(), seed);
    }

    #[test]
    fn bad_hex_rejected() {
        assert!(Seed::from_hex("abc").is_err());
        assert!(Seed::from_hex(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn test_keys_differ() {
        assert_ne!(Seed::from_test_key(1), Seed::from_test_key(2));
        assert_eq!(Seed::from_test_key(1), Seed::from_test_key(1));
    }

    #[test]
    fn debug_redacts() {
        let seed = Seed::from_test_key(1);
        assert_eq!(format!("{seed:?}"), "Seed(<redacted>)");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ssx_prg_seed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seed.hex");
        let seed = Seed::from_test_key(99);
        seed.save(&path).unwrap();
        assert_eq!(Seed::load(&path).unwrap(), seed);
        std::fs::remove_file(&path).ok();
    }
}
