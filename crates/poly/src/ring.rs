//! The encoding ring `R = F_q[x]/(x^{q-1} − 1)`.
//!
//! Ring elements ([`RingPoly`]) are dense coefficient vectors of fixed length
//! `n = q − 1`; index `i` holds the coefficient of `x^i`. Multiplication is
//! cyclic convolution (`x^n ≡ 1`). All operations go through a shared
//! [`RingCtx`] that owns the field context and size bookkeeping.

use ssx_field::{FieldCtx, FieldError};
use std::fmt;
use std::sync::Arc;

/// Upper bound on the ring length `n = q − 1`. Each stored node costs `n`
/// coefficients, so larger fields would be unusably expensive — the paper
/// uses `q = 83` (`n = 82`).
pub const MAX_RING_LEN: u64 = 1 << 16;

/// Rings up to this length precompute dense DFT matrices for the boundary
/// transforms (`2·4·n²` bytes — ≤ 512 KiB at the cap, ~53 KiB for the
/// paper's `n = 82`). Prime fields only: extension-field element codes are
/// not integers mod `q`, so the raw multiply-accumulate rows don't apply.
pub(crate) const DFT_TABLE_MAX_LEN: usize = 256;

/// Precomputed transform matrices over `u32` element codes. Because a table
/// is only built when `n ≤ 256` (so `q = n + 1 ≤ 257`), every product in a
/// row fits in 17 bits and a whole row's sum in a `u64` with room to spare —
/// one Barrett reduction per output element.
#[derive(Debug)]
pub(crate) struct DftTables {
    /// `fwd[k·n + i] = g^{ik}`: row `k` evaluates at the point `g^k`.
    pub(crate) fwd: Vec<u32>,
    /// `inv[i·n + k] = n^{-1}·g^{-ik}`: row `i` yields coefficient `i`
    /// (the `n^{-1}` scaling is folded into the table).
    pub(crate) inv: Vec<u32>,
}

/// Errors from ring construction or element validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// Underlying field construction failed.
    Field(FieldError),
    /// `q − 1` exceeded [`MAX_RING_LEN`].
    RingTooLarge(u64),
    /// Coefficient vector had the wrong length for this ring.
    WrongLength {
        /// Ring length `q - 1`.
        expected: usize,
        /// Supplied vector length.
        got: usize,
    },
    /// A coefficient code was not a valid field element.
    InvalidCoefficient(u64),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Field(e) => write!(f, "field error: {e}"),
            RingError::RingTooLarge(n) => write!(f, "ring length {n} exceeds {MAX_RING_LEN}"),
            RingError::WrongLength { expected, got } => {
                write!(f, "coefficient vector length {got}, ring needs {expected}")
            }
            RingError::InvalidCoefficient(c) => write!(f, "invalid coefficient code {c}"),
        }
    }
}

impl std::error::Error for RingError {}

impl From<FieldError> for RingError {
    fn from(e: FieldError) -> Self {
        RingError::Field(e)
    }
}

/// Context for `F_q[x]/(x^{q-1} − 1)`: the field plus derived constants.
///
/// Cheap to clone (the field context is shared behind an [`Arc`]). Besides
/// the coefficient representation, the context owns the evaluation-point
/// basis `g^0, g^1, …, g^{n−1}` (generator `g` of `F_q^*`) of the dual
/// evaluation-domain representation — see [`crate::evaldom`].
#[derive(Clone, Debug)]
pub struct RingCtx {
    field: Arc<FieldCtx>,
    n: usize,
    /// `points[k] = g^k` — the DFT twiddle/evaluation points.
    pub(crate) points: Arc<[u64]>,
    /// `(q − 1)^{-1}` as a field element (always `p − 1`, since
    /// `q − 1 ≡ −1 (mod p)`); scales the inverse transform.
    pub(crate) n_inv: u64,
    /// Blocked matrix-vector transform tables (prime fields with
    /// `n ≤ DFT_TABLE_MAX_LEN`; `None` otherwise — the exponent-stepping
    /// fallback path then applies).
    pub(crate) dft: Option<Arc<DftTables>>,
}

impl RingCtx {
    /// Builds the ring for `F_{p^e}`.
    pub fn new(p: u64, e: u32) -> Result<Self, RingError> {
        let field = FieldCtx::new(p, e)?;
        Self::from_field(field)
    }

    /// Builds the ring over an existing field context.
    pub fn from_field(field: FieldCtx) -> Result<Self, RingError> {
        let n = field.order() - 1;
        if n == 0 || n > MAX_RING_LEN {
            return Err(RingError::RingTooLarge(n));
        }
        let points: Arc<[u64]> = (0..n).map(|k| field.generator_pow(k)).collect();
        let n_inv = field
            .inv(n % field.p())
            .expect("q - 1 ≡ -1 (mod p) is invertible");
        let n = n as usize;
        let dft = if field.e() == 1 && n <= DFT_TABLE_MAX_LEN {
            let mut fwd = vec![0u32; n * n];
            let mut inv = vec![0u32; n * n];
            for i in 0..n {
                for k in 0..n {
                    let e = (i * k) % n;
                    fwd[k * n + i] = field.generator_pow(e as u64) as u32;
                    let conj = field.generator_pow(((n - e) % n) as u64);
                    inv[i * n + k] = field.mul(n_inv, conj) as u32;
                }
            }
            Some(Arc::new(DftTables { fwd, inv }))
        } else {
            None
        };
        Ok(RingCtx {
            field: Arc::new(field),
            n,
            points,
            n_inv,
            dft,
        })
    }

    /// The underlying field.
    #[inline]
    pub fn field(&self) -> &FieldCtx {
        &self.field
    }

    /// Ring length `n = q − 1` (number of coefficients per element).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Rings always have at least one coefficient slot (`q >= 2`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The zero element.
    pub fn zero(&self) -> RingPoly {
        RingPoly {
            coeffs: vec![0; self.n].into_boxed_slice(),
        }
    }

    /// The multiplicative identity (constant polynomial 1).
    pub fn one(&self) -> RingPoly {
        let mut c = vec![0; self.n];
        c[0] = 1;
        RingPoly {
            coeffs: c.into_boxed_slice(),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(&self, c: u64) -> RingPoly {
        debug_assert!(self.field.is_valid(c));
        let mut v = vec![0; self.n];
        v[0] = c;
        RingPoly {
            coeffs: v.into_boxed_slice(),
        }
    }

    /// The leaf-node monomial `x − t` (paper §3 step 2, leaf case).
    ///
    /// For the degenerate ring `n = 1` (`q = 2`) this is `1 − t` because
    /// `x ≡ 1`; all larger rings store it as a proper linear polynomial.
    pub fn linear(&self, t: u64) -> RingPoly {
        let mut out = self.zero();
        self.linear_into(t, &mut out);
        out
    }

    /// Allocation-free variant of [`RingCtx::linear`]: overwrites `out` with
    /// the coefficients of `x − t`.
    pub fn linear_into(&self, t: u64, out: &mut RingPoly) {
        debug_assert!(self.field.is_valid(t));
        debug_assert_eq!(out.coeffs.len(), self.n);
        let c = out.coeffs_mut();
        c.fill(0);
        c[0] = self.field.neg(t);
        if self.n == 1 {
            c[0] = self.field.add(c[0], 1);
        } else {
            c[1] = 1;
        }
    }

    /// Validates an externally supplied coefficient vector.
    pub fn poly_from_coeffs(&self, coeffs: Vec<u64>) -> Result<RingPoly, RingError> {
        if coeffs.len() != self.n {
            return Err(RingError::WrongLength {
                expected: self.n,
                got: coeffs.len(),
            });
        }
        if let Some(&bad) = coeffs.iter().find(|&&c| !self.field.is_valid(c)) {
            return Err(RingError::InvalidCoefficient(bad));
        }
        Ok(RingPoly {
            coeffs: coeffs.into_boxed_slice(),
        })
    }

    /// Addition.
    pub fn add(&self, a: &RingPoly, b: &RingPoly) -> RingPoly {
        self.check(a);
        self.check(b);
        let coeffs = a
            .coeffs
            .iter()
            .zip(b.coeffs.iter())
            .map(|(&x, &y)| self.field.add(x, y))
            .collect();
        RingPoly { coeffs }
    }

    /// In-place addition `a += b` — no allocation, batched kernel.
    pub fn add_assign(&self, a: &mut RingPoly, b: &RingPoly) {
        self.check(a);
        self.check(b);
        self.field.add_mod_batch(&mut a.coeffs, &b.coeffs);
    }

    /// Subtraction.
    pub fn sub(&self, a: &RingPoly, b: &RingPoly) -> RingPoly {
        self.check(a);
        self.check(b);
        let coeffs = a
            .coeffs
            .iter()
            .zip(b.coeffs.iter())
            .map(|(&x, &y)| self.field.sub(x, y))
            .collect();
        RingPoly { coeffs }
    }

    /// In-place subtraction `a -= b` — no allocation, batched kernel.
    pub fn sub_assign(&self, a: &mut RingPoly, b: &RingPoly) {
        self.check(a);
        self.check(b);
        self.field.sub_mod_batch(&mut a.coeffs, &b.coeffs);
    }

    /// Additive inverse.
    pub fn neg(&self, a: &RingPoly) -> RingPoly {
        self.check(a);
        let coeffs = a.coeffs.iter().map(|&x| self.field.neg(x)).collect();
        RingPoly { coeffs }
    }

    /// Ring product — cyclic convolution, `O(n^2)` field multiplications.
    pub fn mul(&self, a: &RingPoly, b: &RingPoly) -> RingPoly {
        self.check(a);
        self.check(b);
        let n = self.n;
        let mut out = vec![0u64; n];
        for (i, &ai) in a.coeffs.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.coeffs.iter().enumerate() {
                if bj == 0 {
                    continue;
                }
                let mut k = i + j;
                if k >= n {
                    k -= n;
                }
                out[k] = self.field.add(out[k], self.field.mul(ai, bj));
            }
        }
        RingPoly {
            coeffs: out.into_boxed_slice(),
        }
    }

    /// Multiplies by the linear factor `(x − t)` in `O(n)` — the hot path of
    /// the bottom-up encoder (one linear multiply per node).
    pub fn mul_linear(&self, a: &RingPoly, t: u64) -> RingPoly {
        let mut out = self.zero();
        self.mul_linear_into(a, t, &mut out);
        out
    }

    /// Allocation-free variant of [`RingCtx::mul_linear`]: writes
    /// `(x − t) · a` into `out` (which must be a distinct element of this
    /// ring).
    pub fn mul_linear_into(&self, a: &RingPoly, t: u64, out: &mut RingPoly) {
        self.check(a);
        self.check(out);
        debug_assert!(self.field.is_valid(t));
        let n = self.n;
        let neg_t = self.field.neg(t);
        #[allow(clippy::needless_range_loop)] // i indexes both `out` and the shifted source
        for i in 0..n {
            // x * a contributes a[i] to position i+1 (cyclically);
            // -t * a contributes -t*a[i] to position i.
            let shifted = if i == 0 {
                a.coeffs[n - 1]
            } else {
                a.coeffs[i - 1]
            };
            out.coeffs[i] = self.field.add(shifted, self.field.mul(neg_t, a.coeffs[i]));
        }
    }

    /// Evaluates at a point by Horner's rule (`n − 1` multiply-adds).
    pub fn eval(&self, a: &RingPoly, v: u64) -> u64 {
        self.check(a);
        self.horner(&a.coeffs, v)
    }

    /// Horner evaluation of a raw coefficient slice (shared by `eval` and
    /// the evaluation-domain transforms).
    #[inline]
    pub(crate) fn horner(&self, coeffs: &[u64], v: u64) -> u64 {
        debug_assert!(self.field.is_valid(v));
        if self.field.e() == 1 {
            // Barrett-fused step: acc·v + c < 2^48 + 2^24 reduces exactly.
            let br = self.field.barrett();
            let mut acc = 0u64;
            for &c in coeffs.iter().rev() {
                acc = br.reduce(acc * v + c);
            }
            return acc;
        }
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = self.field.add(self.field.mul(acc, v), c);
        }
        acc
    }

    #[inline]
    fn check(&self, a: &RingPoly) {
        debug_assert_eq!(a.coeffs.len(), self.n, "ring element from a different ring");
    }
}

/// A ring element: `q − 1` field-element codes, index = exponent of `x`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RingPoly {
    coeffs: Box<[u64]>,
}

impl RingPoly {
    /// Coefficient view (little-endian by exponent).
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable coefficient view for the crate's allocation-free fill paths
    /// (PRG draws, inverse transforms). Callers must keep codes valid.
    #[inline]
    pub(crate) fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// True iff all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Number of coefficients (`q − 1`).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when the ring is the degenerate `n = 0` case (never constructed
    /// through [`RingCtx`], present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }
}

impl fmt::Debug for RingPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compact display: only nonzero terms, low degree first.
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| match i {
                0 => format!("{c}"),
                1 => format!("{c}x"),
                _ => format!("{c}x^{i}"),
            })
            .collect();
        if terms.is_empty() {
            write!(f, "0")
        } else {
            write!(f, "{}", terms.join(" + "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring5() -> RingCtx {
        RingCtx::new(5, 1).unwrap() // F_5[x]/(x^4 - 1), the paper's figure-1 ring
    }

    #[test]
    fn construction_limits() {
        assert!(RingCtx::new(83, 1).is_ok());
        assert!(matches!(
            RingCtx::new(6, 1).unwrap_err(),
            RingError::Field(_)
        ));
        // q - 1 too large for the ring even though the field allows it.
        assert!(matches!(
            RingCtx::new(131101, 1).unwrap_err(),
            RingError::RingTooLarge(_)
        ));
    }

    #[test]
    fn paper_figure1_leaf_encodings() {
        // map: a=2, b=1, c=3. Leaves in fig 1(d): x-2 -> "x + 3", x-1 -> "x + 4",
        // x-3 -> "x + 2" over F_5.
        let r = ring5();
        assert_eq!(r.linear(2).coeffs(), &[3, 1, 0, 0]);
        assert_eq!(r.linear(1).coeffs(), &[4, 1, 0, 0]);
        assert_eq!(r.linear(3).coeffs(), &[2, 1, 0, 0]);
    }

    #[test]
    fn paper_figure1_internal_nodes() {
        // (x-1)(x-3) = x^2 - 4x + 3 = x^2 + x + 3 over F_5 (fig 1(d) middle left).
        let r = ring5();
        let f = r.mul(&r.linear(1), &r.linear(3));
        assert_eq!(f.coeffs(), &[3, 1, 1, 0]);

        // (x-3)(x-2)(x-1) = x^3 + 4x^2 + x + 4 (fig 1(d) middle right).
        let g = r.mul(&r.mul(&r.linear(3), &r.linear(2)), &r.linear(1));
        assert_eq!(g.coeffs(), &[4, 1, 4, 1]);

        // Root: (x-1)^2 (x-2)^2 (x-3)^2 reduced. Degree <= 3 ring elements are
        // determined by their values at the 4 nonzero points; the root must
        // vanish at 1, 2, 3 and equal A(4)^2 = 1 at 4, i.e. equal A itself =
        // x^3 + 4x^2 + x + 4. (The printed figure 1(d) shows 2A — off by a
        // scalar and inconsistent with evaluation preservation; we follow the
        // math, which interpolation at the nonzero points confirms.)
        let root = r.mul(&r.mul(&f, &g), &r.linear(2));
        assert_eq!(root.coeffs(), &[4, 1, 4, 1]);
        assert_eq!(
            root, g,
            "A^2 and A agree on all nonzero points, hence in the ring"
        );
    }

    #[test]
    fn paper_figure1_share_sum() {
        // Splitting the fig-1 root polynomial and summing the shares must
        // recover it, and each share alone differs from it.
        let r = ring5();
        let root = r.poly_from_coeffs(vec![4, 1, 4, 1]).unwrap();
        let client = r.poly_from_coeffs(vec![1, 0, 1, 2]).unwrap();
        let server = r.sub(&root, &client);
        assert_eq!(r.add(&client, &server), root);
        assert_ne!(client, root);
        assert_ne!(server, root);
    }

    #[test]
    fn reduction_preserves_nonzero_evaluations() {
        // The unreduced square (x-1)^2(x-2)^2(x-3)^2 has degree 6 > 4; after
        // reduction its evaluations at nonzero points must be unchanged —
        // zero exactly at 1, 2, 3.
        let r = ring5();
        let root = {
            let mut acc = r.one();
            for t in [1u64, 1, 2, 2, 3, 3] {
                acc = r.mul_linear(&acc, t);
            }
            acc
        };
        for v in 1..5u64 {
            let val = r.eval(&root, v);
            if v <= 3 {
                assert_eq!(val, 0, "v={v} is a mapped tag");
            } else {
                assert_ne!(val, 0, "v={v} is not in the tree");
            }
        }
    }

    #[test]
    fn mul_linear_matches_general_mul() {
        let r = RingCtx::new(83, 1).unwrap();
        let mut f = r.one();
        for t in [5u64, 17, 33, 2, 80] {
            f = r.mul_linear(&f, t);
        }
        let mut g = r.one();
        for t in [5u64, 17, 33, 2, 80] {
            g = r.mul(&g, &r.linear(t));
        }
        assert_eq!(f, g);
    }

    #[test]
    fn ring_identities() {
        let r = ring5();
        let a = r.poly_from_coeffs(vec![1, 2, 3, 4]).unwrap();
        let b = r.poly_from_coeffs(vec![4, 0, 1, 2]).unwrap();
        assert_eq!(r.add(&a, &r.zero()), a);
        assert_eq!(r.mul(&a, &r.one()), a);
        assert_eq!(r.sub(&a, &a), r.zero());
        assert_eq!(r.add(&a, &r.neg(&a)), r.zero());
        assert_eq!(r.mul(&a, &b), r.mul(&b, &a));
    }

    #[test]
    fn eval_is_ring_homomorphism_at_nonzero_points() {
        let r = RingCtx::new(29, 1).unwrap();
        let a = r
            .poly_from_coeffs((0..28).map(|i| (i * 7 + 3) % 29).collect())
            .unwrap();
        let b = r
            .poly_from_coeffs((0..28).map(|i| (i * 11 + 1) % 29).collect())
            .unwrap();
        let prod = r.mul(&a, &b);
        let sum = r.add(&a, &b);
        for v in r.field().nonzero_elements() {
            assert_eq!(
                r.eval(&prod, v),
                r.field().mul(r.eval(&a, v), r.eval(&b, v))
            );
            assert_eq!(r.eval(&sum, v), r.field().add(r.eval(&a, v), r.eval(&b, v)));
        }
    }

    #[test]
    fn poly_from_coeffs_validation() {
        let r = ring5();
        assert!(matches!(
            r.poly_from_coeffs(vec![0; 3]).unwrap_err(),
            RingError::WrongLength {
                expected: 4,
                got: 3
            }
        ));
        assert!(matches!(
            r.poly_from_coeffs(vec![0, 9, 0, 0]).unwrap_err(),
            RingError::InvalidCoefficient(9)
        ));
    }

    #[test]
    fn degenerate_ring_q2() {
        // F_2: n = 1, x ≡ 1, so (x - t) collapses to the constant 1 - t.
        let r = RingCtx::new(2, 1).unwrap();
        assert_eq!(r.len(), 1);
        let f = r.linear(1); // x - 1 ≡ 0
        assert!(f.is_zero());
    }

    #[test]
    fn debug_format_compact() {
        let r = ring5();
        let f = r.poly_from_coeffs(vec![3, 0, 1, 2]).unwrap();
        assert_eq!(format!("{f:?}"), "3 + 1x^2 + 2x^3");
        assert_eq!(format!("{:?}", r.zero()), "0");
    }
}
