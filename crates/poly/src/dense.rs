//! Unreduced dense polynomials over `F_q`.
//!
//! The paper's figure 1(c) shows the *unreduced* tree encoding before the
//! "smart reduction" into the ring. This type exists to (a) validate that
//! reduction preserves nonzero-point evaluations, (b) quantify the storage
//! the reduction saves (an ablation experiment), and (c) provide textbook
//! division used in tests of the equality test.

use crate::ring::{RingCtx, RingPoly};
use ssx_field::FieldCtx;

/// An arbitrary-degree polynomial over `F_q`; little-endian coefficients,
/// normalised (no trailing zeros; zero polynomial = empty vector).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DensePoly {
    coeffs: Vec<u64>,
}

impl DensePoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        DensePoly { coeffs: Vec::new() }
    }

    /// The constant 1.
    pub fn one() -> Self {
        DensePoly { coeffs: vec![1] }
    }

    /// `x − t`.
    pub fn linear(field: &FieldCtx, t: u64) -> Self {
        DensePoly {
            coeffs: vec![field.neg(t), 1],
        }
    }

    /// From little-endian coefficients (normalising trailing zeros; the
    /// caller guarantees codes are valid field elements).
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        let mut c = coeffs;
        while c.last() == Some(&0) {
            c.pop();
        }
        DensePoly { coeffs: c }
    }

    /// Coefficient view.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Degree, `None` for zero.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Number of stored coefficients — the storage cost the reduction is
    /// compared against (degree + 1).
    pub fn storage_coeffs(&self) -> usize {
        self.coeffs.len()
    }

    /// Product.
    pub fn mul(&self, other: &DensePoly, field: &FieldCtx) -> DensePoly {
        if self.is_zero() || other.is_zero() {
            return DensePoly::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] = field.add(out[i + j], field.mul(a, b));
            }
        }
        DensePoly::from_coeffs(out)
    }

    /// Sum.
    pub fn add(&self, other: &DensePoly, field: &FieldCtx) -> DensePoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u64; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *o = field.add(a, b);
        }
        DensePoly::from_coeffs(out)
    }

    /// Evaluation by Horner's rule.
    pub fn eval(&self, field: &FieldCtx, v: u64) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = field.add(field.mul(acc, v), c);
        }
        acc
    }

    /// Euclidean division `(quotient, remainder)`; panics on zero divisor.
    pub fn divrem(&self, div: &DensePoly, field: &FieldCtx) -> (DensePoly, DensePoly) {
        assert!(!div.is_zero(), "division by zero polynomial");
        if self.coeffs.len() < div.coeffs.len() {
            return (DensePoly::zero(), self.clone());
        }
        let dd = div.coeffs.len() - 1;
        let lead_inv = field
            .inv(*div.coeffs.last().unwrap())
            .expect("nonzero lead");
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let factor = field.mul(c, lead_inv);
            quot[i - dd] = factor;
            for (j, &dc) in div.coeffs.iter().enumerate() {
                let idx = i - dd + j;
                rem[idx] = field.sub(rem[idx], field.mul(factor, dc));
            }
        }
        (DensePoly::from_coeffs(quot), DensePoly::from_coeffs(rem))
    }

    /// Reduces into the ring `F_q[x]/(x^{q-1} − 1)` by folding exponents
    /// modulo `q − 1` — the paper's "smart reduction" (§3, fig 1(c)→1(d)).
    pub fn reduce(&self, ring: &RingCtx) -> RingPoly {
        let n = ring.len();
        let mut out = vec![0u64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            let k = i % n;
            out[k] = ring.field().add(out[k], c);
        }
        ring.poly_from_coeffs(out)
            .expect("reduction yields valid element")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_field::FieldCtx;

    fn f5() -> FieldCtx {
        FieldCtx::new(5, 1).unwrap()
    }

    #[test]
    fn figure1_unreduced_root() {
        // (x-1)^2 (x-2)^2 (x-3)^2 over F_5 has degree 6 (fig 1(c) top).
        let f = f5();
        let mut acc = DensePoly::one();
        for t in [1u64, 1, 2, 2, 3, 3] {
            acc = acc.mul(&DensePoly::linear(&f, t), &f);
        }
        assert_eq!(acc.degree(), Some(6));
        // Reduced, A^2 collapses back to A = x^3 + 4x^2 + x + 4: both vanish
        // at 1, 2, 3 and take the value 1 at 4, and degree <= 3 ring elements
        // are determined by the 4 nonzero evaluations.
        let ring = RingCtx::new(5, 1).unwrap();
        assert_eq!(acc.reduce(&ring).coeffs(), &[4, 1, 4, 1]);
    }

    #[test]
    fn reduction_agrees_with_ring_multiplication() {
        let ring = RingCtx::new(29, 1).unwrap();
        let f = ring.field();
        let tags = [3u64, 7, 7, 12, 25, 3, 9, 14, 1, 28];
        let mut dense = DensePoly::one();
        let mut reduced = ring.one();
        for &t in &tags {
            dense = dense.mul(&DensePoly::linear(f, t), f);
            reduced = ring.mul_linear(&reduced, t);
        }
        assert_eq!(dense.reduce(&ring), reduced);
        for v in ring.field().nonzero_elements() {
            assert_eq!(dense.eval(f, v), ring.eval(&reduced, v));
        }
    }

    #[test]
    fn divrem_recovers_factor() {
        let f = f5();
        let children = DensePoly::linear(&f, 1).mul(&DensePoly::linear(&f, 3), &f);
        let node = DensePoly::linear(&f, 2).mul(&children, &f);
        let (q, r) = node.divrem(&children, &f);
        assert!(r.is_zero());
        assert_eq!(q, DensePoly::linear(&f, 2), "quotient is (x - map(node))");
    }

    #[test]
    fn divrem_general_identity() {
        let f = FieldCtx::new(83, 1).unwrap();
        let a = DensePoly::from_coeffs(vec![1, 7, 0, 5, 13, 82, 9]);
        let b = DensePoly::from_coeffs(vec![4, 0, 1, 3]);
        let (q, r) = a.divrem(&b, &f);
        let back = q.mul(&b, &f).add(&r, &f);
        assert_eq!(back, a);
        assert!(r.degree().is_none_or(|d| d < 3));
    }

    #[test]
    fn storage_counts() {
        let f = f5();
        let mut acc = DensePoly::one();
        for t in [1u64, 1, 2, 2, 3, 3] {
            acc = acc.mul(&DensePoly::linear(&f, t), &f);
        }
        // Unreduced: 7 coefficients; reduced ring element: always 4.
        assert_eq!(acc.storage_coeffs(), 7);
        let ring = RingCtx::new(5, 1).unwrap();
        assert_eq!(acc.reduce(&ring).len(), 4);
    }

    #[test]
    fn zero_handling() {
        let f = f5();
        assert!(DensePoly::zero().is_zero());
        assert_eq!(DensePoly::zero().degree(), None);
        assert_eq!(
            DensePoly::zero().mul(&DensePoly::one(), &f),
            DensePoly::zero()
        );
        assert_eq!(DensePoly::from_coeffs(vec![0, 0, 0]), DensePoly::zero());
    }
}
