#![warn(missing_docs)]

//! Polynomials over `F_q` and the paper's encoding ring
//! `R = F_q[x]/(x^{q-1} − 1)`, plus additive secret sharing and bit-exact
//! coefficient packing.
//!
//! The scheme (Brinkman et al., SDM 2005, §3) encodes each XML node as
//!
//! ```text
//! f(node) = (x − map(node)) · Π_{d ∈ children(node)} f(d)
//! ```
//!
//! reduced in `R`. Because every nonzero `a ∈ F_q` satisfies `a^{q-1} = 1`,
//! reduction mod `x^{q-1} − 1` preserves evaluations at all *nonzero* points,
//! which is exactly where the scheme evaluates (`map` never maps to 0). The
//! *containment test* is a single evaluation; the *equality test* divides a
//! node polynomial by the product of its children to recover the monomial
//! `(x − t)` ([`extract_root`]).
//!
//! Each polynomial is split into a pseudorandom client share and a server
//! share summing to the original ([`split_with_prg`] / [`reconstruct`]).
//!
//! [`packing`] stores a `q-1`-coefficient vector in exactly
//! `ceil((q−1)·log2 q / 8)` bytes (radix conversion), matching the paper's
//! storage accounting ("a polynomial takes `(p^e − 1) log2 p^e` bits"); a
//! faster bit-aligned packing is provided for comparison (ablation bench).

pub mod dense;
pub mod evaldom;
pub mod packing;
pub mod ring;
pub mod root;
pub mod share;

pub use dense::DensePoly;
pub use evaldom::EvalPoly;
pub use packing::{radix_len, PackError, Packer};
pub use ring::{RingCtx, RingError, RingPoly};
pub use root::{extract_root, extract_root_evals, RootOutcome};
pub use share::{
    combine_values, lagrange_at_zero, random_poly, random_poly_into, reconstruct, reconstruct_t,
    scale_poly, split_n, split_with_prg,
};
