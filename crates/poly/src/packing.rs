//! Compact serialisation of ring polynomials.
//!
//! The paper's storage accounting assumes a polynomial costs
//! `(q − 1)·log2 q` bits (§4: "In case p = 29 a polynomial costs 17 bytes").
//! That is the *information-theoretic* size, achieved here by treating the
//! coefficient vector as one big base-`q` integer and converting it to bytes
//! ([`Packer::pack_radix`]). A faster bit-aligned packing
//! ([`Packer::pack_bits`], `ceil(log2 q)` bits per coefficient) and the raw
//! `u64` representation are provided so the trade-off can be measured (see
//! the `ablations` bench).

use crate::ring::{RingCtx, RingPoly};
use std::fmt;

/// Errors from unpacking serialized polynomials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// Input had the wrong length for this packer.
    WrongLength {
        /// Expected packed byte length.
        expected: usize,
        /// Supplied byte length.
        got: usize,
    },
    /// Radix decoding overflowed `q^n` — the bytes are not a valid packing.
    Corrupt,
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::WrongLength { expected, got } => {
                write!(f, "packed polynomial length {got}, expected {expected}")
            }
            PackError::Corrupt => write!(f, "packed bytes do not decode to a valid polynomial"),
        }
    }
}

impl std::error::Error for PackError {}

/// Precomputed packing parameters for one ring.
///
/// The radix conversion works on *superdigits*: groups of `group` base-`q`
/// coefficients are first folded into one value below
/// `super_radix = q^group ≤ 2^32` (a short Horner pass), and the bignum
/// arithmetic then runs over base-2^32 limbs with one multiply-accumulate —
/// or one reciprocal divmod — per limb per group, instead of one hardware
/// division per coefficient per 32-bit pass. All divisions by `q` and by
/// `super_radix` are strength-reduced to reciprocal multiplies.
#[derive(Clone, Debug)]
pub struct Packer {
    q: u64,
    n: usize,
    radix_len: usize,
    bits_per_coeff: u32,
    bit_len: usize,
    /// Coefficients per superdigit: the largest `k ≤ n` with `q^k ≤ 2^32`.
    group: usize,
    /// `q^group` (may equal `2^32` exactly for power-of-two `q`).
    super_radix: u64,
    /// `⌊(2^64 − 1)/super_radix⌋`: estimates `x / super_radix` for
    /// `x < 2^64` within 1 via a high multiply (one conditional correction).
    recip_super: u64,
    /// `⌊2^32/q⌋`: estimates `s / q` for `s < 2^32` within 1 via a shifted
    /// multiply (one conditional correction).
    recip_q: u64,
    /// Base-2^32 limbs in one packed polynomial: `ceil(radix_len / 4)`.
    limb_len: usize,
    /// Coefficients per *wide* superdigit on the pack path: the largest
    /// `k ≤ n` with `q^k ≤ 2^64 − 1` (pack accumulates over base-2^64 limbs
    /// with `u128` multiply-accumulates; unpack keeps the 32-bit layout its
    /// reciprocal bounds were proved for).
    wide_group: usize,
    /// `q^wide_group`.
    wide_radix: u64,
    /// Base-2^64 limbs in one packed polynomial: `ceil(radix_len / 8)`.
    wide_limb_len: usize,
}

/// Limb scratch above this size falls back to a heap allocation; below it
/// the unpack path borrows a stack array (`q = 83` needs 17 limbs).
const STACK_LIMBS: usize = 32;

impl Packer {
    /// Builds a packer for `ring`.
    pub fn new(ring: &RingCtx) -> Self {
        let q = ring.field().order();
        let n = ring.len();
        let bits_per_coeff = ring.field().bits_per_element();
        let bit_len = (n * bits_per_coeff as usize).div_ceil(8);
        let radix_len = radix_len(q, n);
        let mut group = 1usize;
        let mut super_radix = q;
        while group < n && super_radix.saturating_mul(q) <= 1 << 32 {
            group += 1;
            super_radix *= q;
        }
        let mut wide_group = 1usize;
        let mut wide_radix = q;
        while wide_group < n && wide_radix <= u64::MAX / q {
            wide_group += 1;
            wide_radix *= q;
        }
        Packer {
            q,
            n,
            radix_len,
            bits_per_coeff,
            bit_len,
            group,
            super_radix,
            recip_super: u64::MAX / super_radix,
            recip_q: (1u64 << 32) / q,
            limb_len: radix_len.div_ceil(4),
            wide_group,
            wide_radix,
            wide_limb_len: radix_len.div_ceil(8),
        }
    }

    /// `x / super_radix` and `x % super_radix` for any `x < 2^64` without a
    /// hardware division: the reciprocal estimate undershoots the true
    /// quotient by at most 1, so one conditional correction canonicalises.
    #[inline]
    fn divmod_super(&self, x: u64) -> (u64, u64) {
        let mut quot = ((x as u128 * self.recip_super as u128) >> 64) as u64;
        let mut rem = x - quot * self.super_radix;
        if rem >= self.super_radix {
            rem -= self.super_radix;
            quot += 1;
        }
        (quot, rem)
    }

    /// `s / q` and `s % q` for `s < 2^32`, reciprocal-multiply form.
    #[inline]
    fn divmod_q(&self, s: u64) -> (u64, u64) {
        debug_assert!(s < 1 << 32);
        let mut quot = (s * self.recip_q) >> 32;
        let mut rem = s - quot * self.q;
        if rem >= self.q {
            rem -= self.q;
            quot += 1;
        }
        (quot, rem)
    }

    /// Bytes per polynomial under radix packing — the paper's
    /// `ceil((q−1)·log2 q / 8)`.
    #[inline]
    pub fn radix_len(&self) -> usize {
        self.radix_len
    }

    /// Bytes per polynomial under bit-aligned packing.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Bytes per polynomial stored as raw `u64` codes.
    #[inline]
    pub fn raw_len(&self) -> usize {
        self.n * 8
    }

    /// Packs a polynomial as a little-endian base-256 rendering of the
    /// base-`q` integer `Σ c_i · q^i`. Exactly [`Packer::radix_len`] bytes.
    pub fn pack_radix(&self, poly: &RingPoly) -> Vec<u8> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.pack_radix_into(poly, &mut work, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Packer::pack_radix`]: `work` is a reusable
    /// limb buffer and the packed bytes replace the contents of `out` — no
    /// allocation once both buffers have warmed up. The emitted bytes are
    /// bit-identical to [`Packer::pack_radix`] (the base-256 digits of an
    /// integer are unique).
    ///
    /// Chunked-Horner conversion over *wide* superdigits: blocks of
    /// `wide_group` coefficients fold into one value below
    /// `q^wide_group ≤ 2^64 − 1` (short Horner per block), and the bignum
    /// grows by `acc ← acc·q^block + superdigit` over base-2^64 limbs with
    /// `u128` multiply-accumulates — for `q = 83` that is 9 limbs × 9 blocks
    /// instead of 17 × 17 on the 32-bit layout the unpack path keeps.
    pub fn pack_radix_into(&self, poly: &RingPoly, work: &mut Vec<u64>, out: &mut Vec<u8>) {
        debug_assert_eq!(poly.len(), self.n);
        let coeffs = poly.coeffs();
        work.clear();
        work.resize(self.wide_limb_len, 0);
        let blocks = self.n.div_ceil(self.wide_group);
        // Most-significant block first: acc = acc · q^len(block) + S_j. The
        // leading block may be short when n is not a multiple of wide_group.
        for j in (0..blocks).rev() {
            let start = j * self.wide_group;
            let end = (start + self.wide_group).min(self.n);
            let mut s = 0u64;
            for &c in coeffs[start..end].iter().rev() {
                s = s * self.q + c;
            }
            let mult = if end - start == self.wide_group {
                self.wide_radix
            } else {
                self.q.pow((end - start) as u32)
            };
            let mut carry = s as u128;
            for l in work.iter_mut() {
                let t = *l as u128 * mult as u128 + carry;
                *l = t as u64;
                carry = t >> 64;
            }
            debug_assert_eq!(carry, 0, "value exceeded q^n");
        }
        out.clear();
        out.reserve(self.radix_len);
        let (full, last) = work.split_at(self.wide_limb_len - 1);
        for &l in full {
            out.extend_from_slice(&l.to_le_bytes());
        }
        let take = self.radix_len - 8 * full.len();
        out.extend_from_slice(&last[0].to_le_bytes()[..take]);
        debug_assert!(
            take == 8 || last[0] >> (8 * take) == 0,
            "value exceeded q^n"
        );
    }

    /// Inverse of [`Packer::pack_radix`].
    pub fn unpack_radix(&self, ring: &RingCtx, bytes: &[u8]) -> Result<RingPoly, PackError> {
        let mut out = ring.zero();
        self.unpack_radix_into(bytes, &mut out)?;
        Ok(out)
    }

    /// Scratch-buffer variant of [`Packer::unpack_radix`]: decodes into an
    /// existing polynomial (typically a reused [`RingCtx::zero`]) without
    /// heap allocation for the paper-scale rings (limb scratch lives on the
    /// stack up to `STACK_LIMBS` limbs).
    ///
    /// The inverse chunked-Horner conversion: the base-2^32 limb bignum is
    /// repeatedly divided by `q^group` (reciprocal-multiply divmod, one per
    /// limb per group), and each superdigit remainder splits into `group`
    /// coefficients with reciprocal divmods by `q` — strength-reduced
    /// division throughout, where the previous code ran a full hardware
    /// divmod chain over all `n` digits for every 32 bits of input.
    pub fn unpack_radix_into(&self, bytes: &[u8], out: &mut RingPoly) -> Result<(), PackError> {
        if bytes.len() != self.radix_len {
            return Err(PackError::WrongLength {
                expected: self.radix_len,
                got: bytes.len(),
            });
        }
        debug_assert_eq!(out.len(), self.n, "output polynomial from the wrong ring");
        let digits = out.coeffs_mut();
        let mut stack = [0u64; STACK_LIMBS];
        let mut heap: Vec<u64>;
        let limbs: &mut [u64] = if self.limb_len <= STACK_LIMBS {
            &mut stack[..self.limb_len]
        } else {
            heap = vec![0u64; self.limb_len];
            &mut heap
        };
        let mut chunks = bytes.chunks_exact(4);
        for (l, c) in limbs.iter_mut().zip(chunks.by_ref()) {
            *l = u32::from_le_bytes(c.try_into().expect("4 bytes")) as u64;
        }
        let rem_bytes = chunks.remainder();
        if !rem_bytes.is_empty() {
            let mut v = 0u64;
            for (k, &b) in rem_bytes.iter().enumerate() {
                v |= (b as u64) << (8 * k);
            }
            limbs[self.limb_len - 1] = v;
        }
        // Peel superdigits least-significant first; `top` tracks the live
        // (possibly nonzero) limb prefix, which shrinks as the value does.
        let mut top = self.limb_len;
        let groups = self.n.div_ceil(self.group);
        for j in 0..groups {
            let start = j * self.group;
            let end = (start + self.group).min(self.n);
            let mut rem = 0u64;
            for l in limbs[..top].iter_mut().rev() {
                let x = (rem << 32) | *l;
                let (quot, r) = self.divmod_super(x);
                *l = quot;
                rem = r;
            }
            while top > 0 && limbs[top - 1] == 0 {
                top -= 1;
            }
            // Split the superdigit into its base-q coefficients.
            for d in digits[start..end].iter_mut() {
                let (quot, r) = self.divmod_q(rem);
                *d = r;
                rem = quot;
            }
            // A full group consumes the whole superdigit (S < q^group); the
            // final short group must too, or the value exceeds q^n.
            if rem != 0 {
                return Err(PackError::Corrupt);
            }
        }
        // Anything left above the peeled groups means the value was ≥ q^n.
        if top != 0 {
            return Err(PackError::Corrupt);
        }
        Ok(())
    }

    /// Packs with `ceil(log2 q)` bits per coefficient, LSB-first.
    pub fn pack_bits(&self, poly: &RingPoly) -> Vec<u8> {
        debug_assert_eq!(poly.len(), self.n);
        let mut out = vec![0u8; self.bit_len];
        let mut bitpos = 0usize;
        for &c in poly.coeffs() {
            for k in 0..self.bits_per_coeff {
                if (c >> k) & 1 == 1 {
                    out[bitpos >> 3] |= 1 << (bitpos & 7);
                }
                bitpos += 1;
            }
        }
        out
    }

    /// Inverse of [`Packer::pack_bits`].
    pub fn unpack_bits(&self, ring: &RingCtx, bytes: &[u8]) -> Result<RingPoly, PackError> {
        if bytes.len() != self.bit_len {
            return Err(PackError::WrongLength {
                expected: self.bit_len,
                got: bytes.len(),
            });
        }
        let mut coeffs = vec![0u64; self.n];
        let mut bitpos = 0usize;
        for c in coeffs.iter_mut() {
            for k in 0..self.bits_per_coeff {
                if (bytes[bitpos >> 3] >> (bitpos & 7)) & 1 == 1 {
                    *c |= 1 << k;
                }
                bitpos += 1;
            }
        }
        ring.poly_from_coeffs(coeffs)
            .map_err(|_| PackError::Corrupt)
    }
}

/// Bytes needed to store `n` base-`q` digits: `ceil(n · log2 q / 8)`.
///
/// Exact for powers of two; for other `q` the f64 computation is safe because
/// `log2 q` is irrational, so `n·log2 q` is never within f64 rounding error
/// of an integer for the supported parameter range.
pub fn radix_len(q: u64, n: usize) -> usize {
    if q.is_power_of_two() {
        let bits = n * q.trailing_zeros() as usize;
        bits.div_ceil(8)
    } else {
        let bits = n as f64 * (q as f64).log2();
        (bits / 8.0).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_byte_costs() {
        // p = 29: 28·log2(29) = 136.02 bits. The paper truncates to "17
        // bytes"; the lossless ceiling is 18 (2^136 < 29^28).
        assert_eq!(radix_len(29, 28), 18);
        // p = 83: 82·log2(83) = 522.8 bits -> 66 bytes.
        assert_eq!(radix_len(83, 82), 66);
        // Power of two: GF(256), 255 coefficients of 8 bits = 255 bytes.
        assert_eq!(radix_len(256, 255), 255);
    }

    #[test]
    fn radix_round_trip_f83() {
        let ring = RingCtx::new(83, 1).unwrap();
        let packer = Packer::new(&ring);
        let mut f = ring.one();
        for t in [1u64, 5, 7, 81, 44, 23] {
            f = ring.mul_linear(&f, t);
        }
        let bytes = packer.pack_radix(&f);
        assert_eq!(bytes.len(), 66);
        assert_eq!(packer.unpack_radix(&ring, &bytes).unwrap(), f);
    }

    #[test]
    fn radix_round_trip_extremes() {
        let ring = RingCtx::new(5, 1).unwrap();
        let packer = Packer::new(&ring);
        for coeffs in [
            vec![0, 0, 0, 0],
            vec![4, 4, 4, 4],
            vec![0, 0, 0, 4],
            vec![4, 0, 0, 0],
        ] {
            let f = ring.poly_from_coeffs(coeffs).unwrap();
            let bytes = packer.pack_radix(&f);
            assert_eq!(packer.unpack_radix(&ring, &bytes).unwrap(), f);
        }
    }

    #[test]
    fn bits_round_trip() {
        let ring = RingCtx::new(83, 1).unwrap();
        let packer = Packer::new(&ring);
        // 82 coefficients * 7 bits = 574 bits -> 72 bytes (vs 66 radix).
        assert_eq!(packer.bit_len(), 72);
        let mut f = ring.linear(17);
        for t in [2u64, 3, 82] {
            f = ring.mul_linear(&f, t);
        }
        let bytes = packer.pack_bits(&f);
        assert_eq!(packer.unpack_bits(&ring, &bytes).unwrap(), f);
    }

    #[test]
    fn radix_never_larger_than_bits() {
        for (p, e) in [(5u64, 1u32), (29, 1), (83, 1), (131, 1), (2, 8), (3, 4)] {
            let ring = RingCtx::new(p, e).unwrap();
            let packer = Packer::new(&ring);
            assert!(
                packer.radix_len() <= packer.bit_len(),
                "radix must not exceed bit packing for q={}",
                ring.field().order()
            );
            assert!(packer.bit_len() <= packer.raw_len());
        }
    }

    #[test]
    fn corrupt_bytes_detected() {
        let ring = RingCtx::new(5, 1).unwrap();
        let packer = Packer::new(&ring);
        // q^n - 1 = 624; max pack = [0x70, 0x02]; 0xFF 0xFF decodes to 65535 > 624.
        let err = packer.unpack_radix(&ring, &[0xff, 0xff]).unwrap_err();
        assert_eq!(err, PackError::Corrupt);
        let err = packer.unpack_radix(&ring, &[0x01]).unwrap_err();
        assert!(matches!(err, PackError::WrongLength { .. }));
    }

    #[test]
    fn into_variants_match_and_reuse_buffers() {
        // radix_len % 4 covers 2 (F_5 n=4 → 2 B), 0 (F_83 → 66... 66 % 4 = 2),
        // so include F_29 (18 B → rem 2) and a power of two (GF(256), 255 B →
        // rem 3) plus F_131 (130·log2 131 / 8 = 115 B → rem 3).
        for (p, e) in [(5u64, 1u32), (29, 1), (83, 1), (131, 1), (2, 8), (3, 4)] {
            let ring = RingCtx::new(p, e).unwrap();
            let packer = Packer::new(&ring);
            let mut work = Vec::new();
            let mut out = Vec::new();
            let mut back = ring.zero();
            let mut f = ring.one();
            for t in 1..ring.field().order().min(20) {
                f = ring.mul_linear(&f, t);
                let baseline = packer.pack_radix(&f);
                packer.pack_radix_into(&f, &mut work, &mut out);
                assert_eq!(out, baseline, "bit-identical packing for q={}", p.pow(e));
                packer.unpack_radix_into(&out, &mut back).unwrap();
                assert_eq!(back, f);
            }
        }
    }

    #[test]
    fn into_variant_rejects_corrupt_and_wrong_length() {
        let ring = RingCtx::new(5, 1).unwrap();
        let packer = Packer::new(&ring);
        let mut out = ring.zero();
        assert_eq!(
            packer
                .unpack_radix_into(&[0xff, 0xff], &mut out)
                .unwrap_err(),
            PackError::Corrupt
        );
        assert!(matches!(
            packer.unpack_radix_into(&[0x01], &mut out).unwrap_err(),
            PackError::WrongLength { .. }
        ));
    }

    #[test]
    fn packing_is_value_faithful_exhaustive_tiny() {
        // F_3, ring length 2: enumerate all 9 polynomials, ensure the packed
        // integers are distinct and round-trip.
        let ring = RingCtx::new(3, 1).unwrap();
        let packer = Packer::new(&ring);
        let mut seen = std::collections::HashSet::new();
        for a in 0..3u64 {
            for b in 0..3u64 {
                let f = ring.poly_from_coeffs(vec![a, b]).unwrap();
                let bytes = packer.pack_radix(&f);
                assert!(seen.insert(bytes.clone()), "collision at ({a},{b})");
                assert_eq!(packer.unpack_radix(&ring, &bytes).unwrap(), f);
            }
        }
    }
}
