//! The dual, evaluation-domain representation of ring elements.
//!
//! The multiplicative group of `F_q` is cyclic of order `n = q − 1` with a
//! fixed generator `g` ([`ssx_field::FieldCtx::generator`]). Evaluating a
//! ring element at the points `g^0, g^1, …, g^{n−1}` is therefore a discrete
//! Fourier transform over `F_q` — and because `x^{q−1} − 1 = Π_{v ≠ 0}(x − v)`
//! splits into distinct linear factors, the CRT makes that evaluation map an
//! **exact ring isomorphism** `R = F_q[x]/(x^{q−1} − 1) ≅ F_q^n`.
//!
//! In the evaluation domain ([`EvalPoly`]):
//!
//! * `mul` is `O(n)` pointwise instead of `O(n²)` cyclic convolution,
//! * `mul_linear` by `(x − t)` is `O(n)`: component `k` scales by `g^k − t`,
//! * evaluation at any nonzero point is an **O(1) lookup** (index =
//!   discrete log of the point), and evaluation at 0 is an `O(n)` average.
//!
//! The forward/inverse transforms cost `O(n²)` table-driven field
//! operations, so the hot paths keep values in whichever domain they operate
//! in and convert **only at the wire/storage boundary**: the packed byte
//! format stays the coefficient-form radix packing, bit-identical to the
//! pre-dual-representation encoding (regression-tested).
//!
//! This is the paper's own correctness argument turned into a data layout:
//! §3 justifies the reduction mod `x^{q−1} − 1` precisely because ring
//! elements are determined by their evaluations at the nonzero points.

use crate::ring::{RingCtx, RingError, RingPoly};
use std::fmt;

/// A ring element in the evaluation domain: component `k` is the value at
/// `g^k`. Exactly `n = q − 1` components.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EvalPoly {
    evals: Box<[u64]>,
}

impl EvalPoly {
    /// The evaluations, indexed by the exponent of the generator.
    #[inline]
    pub fn evals(&self) -> &[u64] {
        &self.evals
    }

    /// Number of components (`q − 1`).
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// True when the ring is the degenerate zero-length case (never
    /// constructed through [`RingCtx`]; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// True iff this is the zero element (all evaluations zero).
    pub fn is_zero(&self) -> bool {
        self.evals.iter().all(|&v| v == 0)
    }
}

impl fmt::Debug for EvalPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EvalPoly{:?}", &self.evals[..])
    }
}

impl RingCtx {
    /// The `k`-th evaluation point `g^k`.
    #[inline]
    pub fn point(&self, k: usize) -> u64 {
        self.points[k]
    }

    /// All evaluation points `g^0 … g^{n−1}`.
    #[inline]
    pub fn eval_points(&self) -> &[u64] {
        &self.points
    }

    /// Forward transform: coefficient → evaluation domain. `O(n²)`
    /// table-driven field operations; use only at domain boundaries.
    pub fn to_evals(&self, a: &RingPoly) -> EvalPoly {
        let mut out = self.evals_zero();
        self.to_evals_into(a, &mut out);
        out
    }

    /// Allocation-free forward transform into an existing buffer.
    ///
    /// Table path (prime fields, `n ≤ 256`): each output component is one
    /// row of the precomputed `g^{ik}` matrix dotted with the coefficient
    /// vector — raw `u64` multiply-accumulates (products fit in 17 bits, the
    /// row sum in 26) with a single Barrett reduction per component.
    ///
    /// Fallback (extension fields / oversized rings): transposed
    /// accumulation — for each nonzero coefficient `a_i = g^{l_i}` the
    /// contribution to component `k` is `g^{l_i + ik}`, whose exponent steps
    /// by `i` per component, so the inner loop is one `exp`-table read, one
    /// field add and one wrap, with zero coefficients skipped outright.
    pub fn to_evals_into(&self, a: &RingPoly, out: &mut EvalPoly) {
        debug_assert_eq!(a.coeffs().len(), self.len());
        debug_assert_eq!(out.evals.len(), self.len());
        let n = self.len();
        let field = self.field();
        if let Some(dft) = &self.dft {
            let br = field.barrett();
            let coeffs = a.coeffs();
            for (row, slot) in dft.fwd.chunks_exact(n).zip(out.evals.iter_mut()) {
                let mut acc = 0u64;
                for (&w, &c) in row.iter().zip(coeffs) {
                    acc += w as u64 * c;
                }
                *slot = br.reduce(acc);
            }
            return;
        }
        out.evals.fill(0);
        for (i, &c) in a.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut e = field.dlog(c).expect("nonzero coefficient") as usize;
            for slot in out.evals.iter_mut() {
                *slot = field.add(*slot, field.generator_pow(e as u64));
                e += i;
                if e >= n {
                    e -= n;
                }
            }
        }
    }

    /// Inverse transform: evaluation → coefficient domain,
    /// `a_i = n^{-1} · Σ_k â_k · g^{-ik}`. `O(n²)` table-driven field
    /// operations; use only at the wire/storage boundary.
    pub fn from_evals(&self, a: &EvalPoly) -> RingPoly {
        let mut out = self.zero();
        self.from_evals_into(a, &mut out);
        out
    }

    /// Allocation-free inverse transform into an existing buffer.
    ///
    /// Same transposed accumulation as [`RingCtx::to_evals_into`] with the
    /// conjugate exponent step `−k`, followed by the `n^{-1}` scaling.
    pub fn from_evals_into(&self, a: &EvalPoly, out: &mut RingPoly) {
        self.from_evals_bounded_into(a, self.len() - 1, out);
    }

    /// Inverse transform when the caller can bound the polynomial's degree:
    /// only coefficients `0..=max_degree` are computed (the rest are zeroed),
    /// cutting the cost from `O(n²)` to `O(n·(max_degree+1))`.
    ///
    /// The bottom-up encoder uses this with `max_degree = subtree size`: a
    /// node with `d ≤ n−1` linear factors has exact degree `d`, so small
    /// subtrees — the overwhelming majority — pay a near-linear boundary
    /// cost. Exact only when the underlying polynomial really has degree
    /// `≤ max_degree`; `max_degree ≥ n−1` is the full transform.
    pub fn from_evals_bounded_into(&self, a: &EvalPoly, max_degree: usize, out: &mut RingPoly) {
        debug_assert_eq!(a.evals.len(), self.len());
        let n = self.len();
        let lim = max_degree.min(n - 1) + 1;
        let field = self.field();
        if let Some(dft) = &self.dft {
            // Matrix rows already carry the n^{-1} factor: coefficient i is
            // one raw multiply-accumulate row dotted with the evaluations,
            // reduced once.
            let br = field.barrett();
            let coeffs = out.coeffs_mut();
            coeffs[lim..].fill(0);
            for (row, slot) in dft.inv.chunks_exact(n).zip(coeffs[..lim].iter_mut()) {
                let mut acc = 0u64;
                for (&w, &v) in row.iter().zip(a.evals.iter()) {
                    acc += w as u64 * v;
                }
                *slot = br.reduce(acc);
            }
            return;
        }
        out.coeffs_mut().fill(0);
        for (k, &c) in a.evals.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // â_k = g^{l_k} contributes g^{l_k - ik} to coefficient i.
            let step = (n - k) % n;
            let mut e = field.dlog(c).expect("nonzero component") as usize;
            for slot in out.coeffs_mut()[..lim].iter_mut() {
                *slot = field.add(*slot, field.generator_pow(e as u64));
                e += step;
                if e >= n {
                    e -= n;
                }
            }
        }
        for slot in out.coeffs_mut()[..lim].iter_mut() {
            *slot = field.mul(self.n_inv, *slot);
        }
    }

    /// The zero element in the evaluation domain.
    pub fn evals_zero(&self) -> EvalPoly {
        EvalPoly {
            evals: vec![0; self.len()].into_boxed_slice(),
        }
    }

    /// The multiplicative identity (the constant 1 evaluates to 1
    /// everywhere).
    pub fn evals_one(&self) -> EvalPoly {
        self.evals_constant(1)
    }

    /// The constant polynomial `c` (evaluates to `c` everywhere).
    pub fn evals_constant(&self, c: u64) -> EvalPoly {
        debug_assert!(self.field().is_valid(c));
        EvalPoly {
            evals: vec![c; self.len()].into_boxed_slice(),
        }
    }

    /// The leaf monomial `x − t` in the evaluation domain: component `k` is
    /// `g^k − t`. `O(n)` — no coefficient-domain detour.
    pub fn evals_linear(&self, t: u64) -> EvalPoly {
        let mut out = self.evals_zero();
        self.evals_linear_into(t, &mut out);
        out
    }

    /// Allocation-free variant of [`RingCtx::evals_linear`]: overwrites
    /// `out` with the evaluations of `x − t`.
    pub fn evals_linear_into(&self, t: u64, out: &mut EvalPoly) {
        debug_assert!(self.field().is_valid(t));
        debug_assert_eq!(out.evals.len(), self.len());
        let field = self.field();
        for (slot, &p) in out.evals.iter_mut().zip(self.points.iter()) {
            *slot = field.sub(p, t);
        }
    }

    /// Validates an externally supplied evaluation vector.
    pub fn evals_from_values(&self, values: Vec<u64>) -> Result<EvalPoly, RingError> {
        if values.len() != self.len() {
            return Err(RingError::WrongLength {
                expected: self.len(),
                got: values.len(),
            });
        }
        if let Some(&bad) = values.iter().find(|&&v| !self.field().is_valid(v)) {
            return Err(RingError::InvalidCoefficient(bad));
        }
        Ok(EvalPoly {
            evals: values.into_boxed_slice(),
        })
    }

    /// Pointwise addition `a += b` — `O(n)`, no allocation, batched kernel.
    pub fn eval_add_assign(&self, a: &mut EvalPoly, b: &EvalPoly) {
        self.field().add_mod_batch(&mut a.evals, &b.evals);
    }

    /// Pointwise subtraction `a -= b` — `O(n)`, no allocation, batched
    /// kernel.
    pub fn eval_sub_assign(&self, a: &mut EvalPoly, b: &EvalPoly) {
        self.field().sub_mod_batch(&mut a.evals, &b.evals);
    }

    /// Pointwise ring product `a *= b` — `O(n)` instead of the `O(n²)`
    /// coefficient-domain convolution; batched Barrett kernel.
    pub fn eval_mul_assign(&self, a: &mut EvalPoly, b: &EvalPoly) {
        self.field().mul_mod_batch(&mut a.evals, &b.evals);
    }

    /// Pointwise ring product, allocating — convenience over
    /// [`RingCtx::eval_mul_assign`].
    pub fn eval_mul(&self, a: &EvalPoly, b: &EvalPoly) -> EvalPoly {
        let mut out = a.clone();
        self.eval_mul_assign(&mut out, b);
        out
    }

    /// Multiplies by the linear factor `(x − t)` in place: component `k`
    /// scales by `g^k − t`. `O(n)`, no allocation — the encoder's hot loop.
    /// Prime fields run a fused branch-free subtract + Barrett multiply over
    /// the sequential generator-power points.
    pub fn eval_mul_linear_assign(&self, a: &mut EvalPoly, t: u64) {
        debug_assert!(self.field().is_valid(t));
        let field = self.field();
        if field.e() == 1 {
            let p = field.order();
            let br = field.barrett();
            for (x, &pt) in a.evals.iter_mut().zip(self.points.iter()) {
                let d = pt + p - t;
                let f = if d >= p { d - p } else { d };
                *x = br.reduce(*x * f);
            }
            return;
        }
        for (x, &p) in a.evals.iter_mut().zip(self.points.iter()) {
            *x = field.mul(*x, field.sub(p, t));
        }
    }

    /// Evaluates at `v`. For nonzero `v` this is an **O(1)** lookup at index
    /// `dlog(v)`; for `v = 0` the constant coefficient is the `O(n)` average
    /// `n^{-1} Σ_k â_k`.
    pub fn eval_at(&self, a: &EvalPoly, v: u64) -> u64 {
        debug_assert!(self.field().is_valid(v));
        debug_assert_eq!(a.evals.len(), self.len());
        let field = self.field();
        match field.dlog(v) {
            Some(k) => a.evals[k as usize],
            None => {
                let mut sum = 0u64;
                for &e in a.evals.iter() {
                    sum = field.add(sum, e);
                }
                field.mul(self.n_inv, sum)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share::random_poly;
    use ssx_prg::Prg;

    fn rings() -> Vec<RingCtx> {
        // Prime fields incl. the paper's F_5 and F_83, plus true extension
        // fields F_4 and F_27.
        [(5u64, 1u32), (29, 1), (83, 1), (2, 2), (3, 3)]
            .into_iter()
            .map(|(p, e)| RingCtx::new(p, e).unwrap())
            .collect()
    }

    #[test]
    fn round_trip_is_identity() {
        for ring in rings() {
            let mut prg = Prg::from_u64(7);
            for _ in 0..8 {
                let a = random_poly(&ring, &mut prg);
                assert_eq!(ring.from_evals(&ring.to_evals(&a)), a);
            }
            // And the other direction.
            let e = ring.evals_linear(1);
            assert_eq!(ring.to_evals(&ring.from_evals(&e)), e);
        }
    }

    #[test]
    fn transform_is_evaluation() {
        for ring in rings() {
            let a = random_poly(&ring, &mut Prg::from_u64(9));
            let evals = ring.to_evals(&a);
            for k in 0..ring.len() {
                assert_eq!(evals.evals()[k], ring.eval(&a, ring.point(k)));
            }
        }
    }

    #[test]
    fn mul_agrees_between_domains() {
        for ring in rings() {
            let mut prg = Prg::from_u64(11);
            let a = random_poly(&ring, &mut prg);
            let b = random_poly(&ring, &mut prg);
            let coeff_prod = ring.mul(&a, &b);
            let eval_prod = ring.eval_mul(&ring.to_evals(&a), &ring.to_evals(&b));
            assert_eq!(ring.from_evals(&eval_prod), coeff_prod);
            assert_eq!(eval_prod, ring.to_evals(&coeff_prod));
        }
    }

    #[test]
    fn mul_linear_agrees_between_domains() {
        for ring in rings() {
            let a = random_poly(&ring, &mut Prg::from_u64(13));
            for t in ring.field().elements() {
                let coeff = ring.mul_linear(&a, t);
                let mut evals = ring.to_evals(&a);
                ring.eval_mul_linear_assign(&mut evals, t);
                assert_eq!(ring.from_evals(&evals), coeff, "t={t}");
            }
        }
    }

    #[test]
    fn add_sub_agree_between_domains() {
        for ring in rings() {
            let mut prg = Prg::from_u64(17);
            let a = random_poly(&ring, &mut prg);
            let b = random_poly(&ring, &mut prg);
            let mut sum = ring.to_evals(&a);
            ring.eval_add_assign(&mut sum, &ring.to_evals(&b));
            assert_eq!(ring.from_evals(&sum), ring.add(&a, &b));
            let mut diff = ring.to_evals(&a);
            ring.eval_sub_assign(&mut diff, &ring.to_evals(&b));
            assert_eq!(ring.from_evals(&diff), ring.sub(&a, &b));
        }
    }

    #[test]
    fn eval_at_matches_horner_everywhere() {
        for ring in rings() {
            let a = random_poly(&ring, &mut Prg::from_u64(19));
            let evals = ring.to_evals(&a);
            // All points including 0 (the O(n) average path).
            for v in ring.field().elements() {
                assert_eq!(ring.eval_at(&evals, v), ring.eval(&a, v), "v={v}");
            }
        }
    }

    #[test]
    fn linear_constructor_matches_coefficient_form() {
        for ring in rings() {
            for t in ring.field().elements() {
                assert_eq!(ring.from_evals(&ring.evals_linear(t)), ring.linear(t));
            }
        }
    }

    #[test]
    fn constants_and_identity() {
        let ring = RingCtx::new(83, 1).unwrap();
        assert_eq!(ring.from_evals(&ring.evals_one()), ring.one());
        assert_eq!(ring.from_evals(&ring.evals_zero()), ring.zero());
        assert_eq!(ring.from_evals(&ring.evals_constant(7)), ring.constant(7));
        assert!(ring.evals_zero().is_zero());
        assert!(!ring.evals_one().is_zero());
    }

    #[test]
    fn validation_of_external_values() {
        let ring = RingCtx::new(5, 1).unwrap();
        assert!(matches!(
            ring.evals_from_values(vec![0; 3]).unwrap_err(),
            RingError::WrongLength {
                expected: 4,
                got: 3
            }
        ));
        assert!(matches!(
            ring.evals_from_values(vec![0, 9, 0, 0]).unwrap_err(),
            RingError::InvalidCoefficient(9)
        ));
        assert!(ring.evals_from_values(vec![1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn degenerate_ring_q2() {
        // n = 1: the single evaluation point is g^0 = 1.
        let ring = RingCtx::new(2, 1).unwrap();
        assert_eq!(ring.eval_points(), &[1]);
        let f = ring.evals_linear(1); // x - 1 ≡ 0
        assert!(f.is_zero());
        assert_eq!(ring.from_evals(&ring.evals_one()), ring.one());
    }

    #[test]
    fn bounded_inverse_matches_full_inverse_for_low_degree() {
        let ring = RingCtx::new(83, 1).unwrap();
        // d linear factors => exact degree d (monic products), so the
        // bounded inverse must reproduce the full transform.
        let mut evals = ring.evals_one();
        for (d, t) in [3u64, 17, 3, 55, 80, 12, 9].into_iter().enumerate() {
            ring.eval_mul_linear_assign(&mut evals, t);
            let full = ring.from_evals(&evals);
            let mut bounded = ring.zero();
            ring.from_evals_bounded_into(&evals, d + 1, &mut bounded);
            assert_eq!(bounded, full, "degree {}", d + 1);
        }
        // A bound at or above n-1 is the full transform on anything.
        let dense = ring.to_evals(&random_poly(&ring, &mut Prg::from_u64(3)));
        let mut out = ring.zero();
        ring.from_evals_bounded_into(&dense, ring.len() - 1, &mut out);
        assert_eq!(out, ring.from_evals(&dense));
        ring.from_evals_bounded_into(&dense, usize::MAX, &mut out);
        assert_eq!(out, ring.from_evals(&dense));
    }

    #[test]
    fn figure1_product_in_eval_domain() {
        // The fig-1 root (x−1)²(x−2)²(x−3)² over F_5 computed entirely in
        // the evaluation domain must come back as [4, 1, 4, 1].
        let ring = RingCtx::new(5, 1).unwrap();
        let mut acc = ring.evals_one();
        for t in [1u64, 1, 2, 2, 3, 3] {
            ring.eval_mul_linear_assign(&mut acc, t);
        }
        assert_eq!(ring.from_evals(&acc).coeffs(), &[4, 1, 4, 1]);
    }
}
