//! Additive secret sharing of ring polynomials (paper §3, step 3).
//!
//! The client share is drawn from a PRG stream; the server share is chosen
//! so the two sum to the plaintext polynomial. Either share alone is
//! uniformly distributed, hence carries no information about the tree.

use crate::ring::{RingCtx, RingPoly};
use ssx_prg::Prg;

/// Draws a uniformly pseudorandom ring element from `prg` — the client share
/// of a node. Exactly `q − 1` bounded draws, so the stream position after a
/// call is deterministic.
pub fn random_poly(ring: &RingCtx, prg: &mut Prg) -> RingPoly {
    let mut out = ring.zero();
    random_poly_into(ring, prg, &mut out);
    out
}

/// Allocation-free variant of [`random_poly`]: overwrites `out` with the
/// next pseudorandom ring element. Identical draw sequence, so shares are
/// interchangeable with the allocating version.
pub fn random_poly_into(ring: &RingCtx, prg: &mut Prg, out: &mut RingPoly) {
    debug_assert_eq!(out.len(), ring.len());
    let q = ring.field().order();
    for c in out.coeffs_mut() {
        *c = prg.next_below(q);
    }
}

/// Splits `f` into `(client, server)` with `client + server = f`, the client
/// share being `random_poly(ring, prg)`.
pub fn split_with_prg(ring: &RingCtx, f: &RingPoly, prg: &mut Prg) -> (RingPoly, RingPoly) {
    let client = random_poly(ring, prg);
    let server = ring.sub(f, &client);
    (client, server)
}

/// Recombines shares: `client + server`.
pub fn reconstruct(ring: &RingCtx, client: &RingPoly, server: &RingPoly) -> RingPoly {
    ring.add(client, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_prg::Prg;

    #[test]
    fn split_reconstruct_identity() {
        let ring = RingCtx::new(83, 1).unwrap();
        let mut prg = Prg::from_u64(7);
        let f = {
            let mut acc = ring.one();
            for t in [3u64, 17, 55, 80] {
                acc = ring.mul_linear(&acc, t);
            }
            acc
        };
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        assert_eq!(reconstruct(&ring, &c, &s), f);
        assert_ne!(c, f, "client share must not equal plaintext");
        assert_ne!(s, f, "server share must not equal plaintext");
    }

    #[test]
    fn shares_sum_pointwise_too() {
        // The interactive protocol adds *evaluations*, not polynomials; the
        // homomorphism must hold at every point.
        let ring = RingCtx::new(29, 1).unwrap();
        let mut prg = Prg::from_u64(11);
        let f = ring.mul_linear(&ring.linear(4), 9);
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        for v in ring.field().nonzero_elements() {
            let sum = ring.field().add(ring.eval(&c, v), ring.eval(&s, v));
            assert_eq!(sum, ring.eval(&f, v));
        }
    }

    #[test]
    fn same_prg_state_reproduces_client_share() {
        let ring = RingCtx::new(83, 1).unwrap();
        let a = random_poly(&ring, &mut Prg::from_u64(99));
        let b = random_poly(&ring, &mut Prg::from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn server_share_looks_uniform() {
        // Split the *same* polynomial many times; each coefficient of the
        // server share should be roughly uniform over F_q. Chi-squared smoke
        // test on the first coefficient.
        let ring = RingCtx::new(5, 1).unwrap();
        let f = ring.mul_linear(&ring.linear(1), 2);
        let mut prg = Prg::from_u64(1234);
        let mut counts = [0u32; 5];
        let draws = 5000;
        for _ in 0..draws {
            let (_, s) = split_with_prg(&ring, &f, &mut prg);
            counts[s.coeffs()[0] as usize] += 1;
        }
        let expect = draws as f64 / 5.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // df = 4; 99.9% quantile ≈ 18.47.
        assert!(
            chi2 < 20.0,
            "server share coefficient biased: chi2 = {chi2}"
        );
    }

    #[test]
    fn zero_poly_splits_to_negatives() {
        let ring = RingCtx::new(5, 1).unwrap();
        let mut prg = Prg::from_u64(3);
        let (c, s) = split_with_prg(&ring, &ring.zero(), &mut prg);
        assert_eq!(ring.add(&c, &s), ring.zero());
        assert_eq!(ring.neg(&c), s);
    }
}
