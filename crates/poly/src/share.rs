//! Additive secret sharing of ring polynomials (paper §3, step 3), plus the
//! t-of-n Shamir split used by the multi-party fleet.
//!
//! The client share is drawn from a PRG stream; the server share is chosen
//! so the two sum to the plaintext polynomial. Either share alone is
//! uniformly distributed, hence carries no information about the tree.
//!
//! For an n-server deployment the *server* share is further split
//! coefficient-wise with a degree-`t−1` Shamir polynomial over `F_q`
//! ([`split_n`]): party `j` (1-based) holds the evaluations at `x = j`, and
//! any `t` parties reconstruct via Lagrange interpolation at zero
//! ([`reconstruct_t`] / [`combine_values`]). Because the split is linear,
//! a party evaluating its share polynomial at a point `v` produces a Shamir
//! share of the true evaluation — the eval-domain fast path survives the
//! fleet unchanged. `t = 1` degenerates to replication (every party holds
//! the plain share), so an `n = 1, t = 1` store is bit-identical to the
//! single-party layout.

use crate::ring::{RingCtx, RingPoly};
use ssx_field::FieldCtx;
use ssx_prg::Prg;

/// Draws a uniformly pseudorandom ring element from `prg` — the client share
/// of a node. One bulk `fill_below` pass of `q − 1` values, so the stream
/// position after a call is deterministic.
pub fn random_poly(ring: &RingCtx, prg: &mut Prg) -> RingPoly {
    let mut out = ring.zero();
    random_poly_into(ring, prg, &mut out);
    out
}

/// Allocation-free variant of [`random_poly`]: overwrites `out` with the
/// next pseudorandom ring element. Identical draw sequence, so shares are
/// interchangeable with the allocating version.
pub fn random_poly_into(ring: &RingCtx, prg: &mut Prg, out: &mut RingPoly) {
    debug_assert_eq!(out.len(), ring.len());
    let q = ring.field().order();
    prg.fill_below(q, out.coeffs_mut());
}

/// Splits `f` into `(client, server)` with `client + server = f`, the client
/// share being `random_poly(ring, prg)`.
pub fn split_with_prg(ring: &RingCtx, f: &RingPoly, prg: &mut Prg) -> (RingPoly, RingPoly) {
    let client = random_poly(ring, prg);
    let server = ring.sub(f, &client);
    (client, server)
}

/// Recombines shares: `client + server`.
pub fn reconstruct(ring: &RingCtx, client: &RingPoly, server: &RingPoly) -> RingPoly {
    ring.add(client, server)
}

/// Splits `f` coefficient-wise into `n` Shamir shares with threshold `t`:
/// any `t` of the returned polynomials reconstruct `f`, any `t − 1` are
/// jointly uniform. Party `j` (1-based) receives element `j − 1`; its
/// x-coordinate is the field code `j`, so `n < q` is required (and `n ≥ t ≥
/// 1`). The masking randomness is one bulk `fill_below` pass of
/// `(t − 1)·(q − 1)` values, so the PRG stream position after a call is
/// deterministic.
///
/// With `t = 1` there is no masking polynomial and every party holds `f`
/// verbatim — the single-party store is the `n = 1, t = 1` degenerate case.
pub fn split_n(ring: &RingCtx, f: &RingPoly, n: usize, t: usize, prg: &mut Prg) -> Vec<RingPoly> {
    let q = ring.field().order();
    assert!(t >= 1 && t <= n, "need 1 <= t <= n, got t={t} n={n}");
    assert!((n as u64) < q, "need n < q to give each party a nonzero x");
    let mut shares: Vec<RingPoly> = (0..n).map(|_| f.clone()).collect();
    let deg = t - 1;
    if deg == 0 {
        return shares; // replication: no masking terms, no PRG draws
    }
    // Degree-(t-1) masking polynomial per coefficient:
    //   share_j[i] = f[i] + sum_{d=1..t-1} r_d · j^d.
    //
    // All masking randoms come from one bulk `fill_below` pass (the pinned
    // lane-packed protocol), laid out coefficient-major (`r_all[i·deg + d]`)
    // so the draw-to-coefficient assignment is independent of `n` and `t`
    // layout choices below.
    let len = ring.len();
    let mut r_all = vec![0u64; len * deg];
    prg.fill_below(q, &mut r_all);
    // Transpose to degree-major columns so the per-party Horner pass can run
    // over contiguous slices with the batched field kernels.
    let mut cols = vec![0u64; len * deg];
    for i in 0..len {
        for d in 0..deg {
            cols[d * len + i] = r_all[i * deg + d];
        }
    }
    let field = ring.field();
    let mut mask = vec![0u64; len];
    for (j, share) in shares.iter_mut().enumerate() {
        let x = (j + 1) as u64;
        // Horner on the masking terms alone: r_1·x + r_2·x² + …
        mask.fill(0);
        for d in (0..deg).rev() {
            field.horner_scalar_batch(&mut mask, &cols[d * len..(d + 1) * len], x);
        }
        field.mul_scalar_batch(&mut mask, x);
        field.add_mod_batch(share.coeffs_mut(), &mask);
    }
    shares
}

/// Lagrange basis coefficients at zero for the x-coordinates `xs`: returns
/// `λ` with `f(0) = Σ λ_k · f(xs[k])` for any polynomial of degree `< xs.len()`.
/// `None` if any coordinate is zero, invalid, or duplicated.
pub fn lagrange_at_zero(field: &FieldCtx, xs: &[u64]) -> Option<Vec<u64>> {
    for (k, &x) in xs.iter().enumerate() {
        if x == 0 || !field.is_valid(x) || xs[..k].contains(&x) {
            return None;
        }
    }
    let mut out = Vec::with_capacity(xs.len());
    for (k, &xk) in xs.iter().enumerate() {
        let mut num = field.one();
        let mut den = field.one();
        for (m, &xm) in xs.iter().enumerate() {
            if m != k {
                num = field.mul(num, field.neg(xm)); // (0 − x_m)
                den = field.mul(den, field.sub(xk, xm));
            }
        }
        out.push(field.div(num, den)?);
    }
    Some(out)
}

/// Reconstructs the secret polynomial from `t` (or more) Shamir shares,
/// given as `(x, share)` pairs. Inverse of [`split_n`] for any subset of
/// at least `t` distinct parties. `None` on bad/duplicate x-coordinates.
pub fn reconstruct_t(ring: &RingCtx, shares: &[(u64, &RingPoly)]) -> Option<RingPoly> {
    let xs: Vec<u64> = shares.iter().map(|&(x, _)| x).collect();
    let lambda = lagrange_at_zero(ring.field(), &xs)?;
    let mut out = ring.zero();
    for (&(_, share), &l) in shares.iter().zip(&lambda) {
        debug_assert_eq!(share.len(), ring.len());
        ring.field()
            .mul_scalar_add_batch(out.coeffs_mut(), share.coeffs(), l);
    }
    Some(out)
}

/// Combines scalar Shamir shares `(x, value)` into the secret value —
/// the eval-domain counterpart of [`reconstruct_t`]: party evaluations of
/// their share polynomials at a common point are themselves Shamir shares
/// of the true evaluation.
pub fn combine_values(field: &FieldCtx, points: &[(u64, u64)]) -> Option<u64> {
    let xs: Vec<u64> = points.iter().map(|&(x, _)| x).collect();
    let lambda = lagrange_at_zero(field, &xs)?;
    let mut acc = field.zero();
    for (&(_, v), &l) in points.iter().zip(&lambda) {
        acc = field.add(acc, field.mul(l, v));
    }
    Some(acc)
}

/// Coefficient-wise scalar multiple `α ⊙ f` — the MAC companion share.
/// Scaling commutes with both evaluation and Lagrange combination, so the
/// client can verify `α · s(v) = m(v)` after reconstruction.
pub fn scale_poly(ring: &RingCtx, alpha: u64, f: &RingPoly) -> RingPoly {
    let mut out = f.clone();
    ring.field().mul_scalar_batch(out.coeffs_mut(), alpha);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_prg::Prg;

    #[test]
    fn split_reconstruct_identity() {
        let ring = RingCtx::new(83, 1).unwrap();
        let mut prg = Prg::from_u64(7);
        let f = {
            let mut acc = ring.one();
            for t in [3u64, 17, 55, 80] {
                acc = ring.mul_linear(&acc, t);
            }
            acc
        };
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        assert_eq!(reconstruct(&ring, &c, &s), f);
        assert_ne!(c, f, "client share must not equal plaintext");
        assert_ne!(s, f, "server share must not equal plaintext");
    }

    #[test]
    fn shares_sum_pointwise_too() {
        // The interactive protocol adds *evaluations*, not polynomials; the
        // homomorphism must hold at every point.
        let ring = RingCtx::new(29, 1).unwrap();
        let mut prg = Prg::from_u64(11);
        let f = ring.mul_linear(&ring.linear(4), 9);
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        for v in ring.field().nonzero_elements() {
            let sum = ring.field().add(ring.eval(&c, v), ring.eval(&s, v));
            assert_eq!(sum, ring.eval(&f, v));
        }
    }

    #[test]
    fn same_prg_state_reproduces_client_share() {
        let ring = RingCtx::new(83, 1).unwrap();
        let a = random_poly(&ring, &mut Prg::from_u64(99));
        let b = random_poly(&ring, &mut Prg::from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn server_share_looks_uniform() {
        // Split the *same* polynomial many times; each coefficient of the
        // server share should be roughly uniform over F_q. Chi-squared smoke
        // test on the first coefficient.
        let ring = RingCtx::new(5, 1).unwrap();
        let f = ring.mul_linear(&ring.linear(1), 2);
        let mut prg = Prg::from_u64(1234);
        let mut counts = [0u32; 5];
        let draws = 5000;
        for _ in 0..draws {
            let (_, s) = split_with_prg(&ring, &f, &mut prg);
            counts[s.coeffs()[0] as usize] += 1;
        }
        let expect = draws as f64 / 5.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // df = 4; 99.9% quantile ≈ 18.47.
        assert!(
            chi2 < 20.0,
            "server share coefficient biased: chi2 = {chi2}"
        );
    }

    #[test]
    fn split_n_any_t_subset_reconstructs() {
        let ring = RingCtx::new(83, 1).unwrap();
        let f = {
            let mut acc = ring.one();
            for t in [3u64, 17, 55] {
                acc = ring.mul_linear(&acc, t);
            }
            acc
        };
        for (n, t) in [(1usize, 1usize), (3, 1), (3, 2), (5, 3), (4, 4)] {
            let shares = split_n(&ring, &f, n, t, &mut Prg::from_u64(42));
            assert_eq!(shares.len(), n);
            // Every contiguous window of t parties reconstructs f.
            for start in 0..=(n - t) {
                let pts: Vec<(u64, &RingPoly)> = (start..start + t)
                    .map(|j| ((j + 1) as u64, &shares[j]))
                    .collect();
                assert_eq!(
                    reconstruct_t(&ring, &pts).unwrap(),
                    f,
                    "n={n} t={t} window {start}"
                );
            }
            // Oversampling (more than t shares) also works.
            if n > t {
                let pts: Vec<(u64, &RingPoly)> =
                    (0..n).map(|j| ((j + 1) as u64, &shares[j])).collect();
                assert_eq!(reconstruct_t(&ring, &pts).unwrap(), f);
            }
        }
    }

    #[test]
    fn split_n_t1_is_replication() {
        let ring = RingCtx::new(83, 1).unwrap();
        let f = ring.mul_linear(&ring.linear(7), 19);
        let shares = split_n(&ring, &f, 3, 1, &mut Prg::from_u64(9));
        for s in &shares {
            assert_eq!(*s, f);
        }
    }

    #[test]
    fn split_n_below_threshold_is_masked() {
        // With t = 2, a single share must differ from the secret (whp) and
        // the split must consume a deterministic number of PRG draws.
        let ring = RingCtx::new(83, 1).unwrap();
        let f = ring.mul_linear(&ring.linear(3), 11);
        let mut prg = Prg::from_u64(77);
        let shares = split_n(&ring, &f, 3, 2, &mut prg);
        assert_ne!(shares[0], f);
        // Same split again from the same seed reproduces identical shares
        // (the bulk draw leaves the PRG at a deterministic position).
        let again = split_n(&ring, &f, 3, 2, &mut Prg::from_u64(77));
        assert_eq!(shares, again);
    }

    #[test]
    fn share_evaluations_combine_like_polys() {
        // Linearity: party evaluations are Shamir shares of the evaluation.
        let ring = RingCtx::new(83, 1).unwrap();
        let f = ring.mul_linear(&ring.mul_linear(&ring.linear(5), 40), 61);
        let shares = split_n(&ring, &f, 3, 2, &mut Prg::from_u64(5));
        for v in [1u64, 2, 44, 82] {
            let pts: Vec<(u64, u64)> = [(1u64, 0usize), (3, 2)]
                .iter()
                .map(|&(x, j)| (x, ring.eval(&shares[j], v)))
                .collect();
            assert_eq!(
                combine_values(ring.field(), &pts).unwrap(),
                ring.eval(&f, v)
            );
        }
    }

    #[test]
    fn lagrange_rejects_bad_points() {
        let ring = RingCtx::new(83, 1).unwrap();
        let field = ring.field();
        assert!(
            lagrange_at_zero(field, &[0]).is_none(),
            "x = 0 leaks secret"
        );
        assert!(lagrange_at_zero(field, &[1, 1]).is_none(), "duplicate x");
        assert!(lagrange_at_zero(field, &[1, 83]).is_none(), "invalid code");
        assert!(lagrange_at_zero(field, &[1, 2, 3]).is_some());
    }

    #[test]
    fn scale_poly_commutes_with_eval_and_combination() {
        let ring = RingCtx::new(83, 1).unwrap();
        let f = ring.mul_linear(&ring.linear(21), 60);
        let alpha = 37u64;
        let m = scale_poly(&ring, alpha, &f);
        for v in ring.field().nonzero_elements() {
            assert_eq!(ring.eval(&m, v), ring.field().mul(alpha, ring.eval(&f, v)));
        }
        // α⊙(split shares) are valid shares of α⊙f.
        let shares = split_n(&ring, &f, 3, 2, &mut Prg::from_u64(8));
        let scaled: Vec<RingPoly> = shares.iter().map(|s| scale_poly(&ring, alpha, s)).collect();
        let pts: Vec<(u64, &RingPoly)> = vec![(2, &scaled[1]), (3, &scaled[2])];
        assert_eq!(reconstruct_t(&ring, &pts).unwrap(), m);
    }

    #[test]
    fn zero_poly_splits_to_negatives() {
        let ring = RingCtx::new(5, 1).unwrap();
        let mut prg = Prg::from_u64(3);
        let (c, s) = split_with_prg(&ring, &ring.zero(), &mut prg);
        assert_eq!(ring.add(&c, &s), ring.zero());
        assert_eq!(ring.neg(&c), s);
    }
}
