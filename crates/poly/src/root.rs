//! Root extraction for the *equality test* (paper §3 and §5.2).
//!
//! The containment test only proves a tag occurs *somewhere* in a subtree.
//! To test whether the subtree root itself carries tag value `t`, the
//! reconstructed node polynomial `f` is divided by the product `g` of all its
//! children's reconstructed polynomials: if the data is well-formed,
//! `f = (x − t)·g` in the ring and `t = map(root)`.
//!
//! Division in `F_q[x]/(x^{q-1} − 1)` is done by evaluation: for any nonzero
//! point `v` with `g(v) ≠ 0`, `t = v − f(v)/g(v)`. A point with `g(v) ≠ 0`
//! exists unless `g` vanishes on *all* nonzero points, which for a reduced
//! nonzero polynomial of degree `< q − 1` requires `g = 0` in the ring — only
//! possible when the children's tag multiset covers every nonzero field
//! value. That degenerate case is reported as [`RootOutcome::Indeterminate`].

use crate::evaldom::EvalPoly;
use crate::ring::{RingCtx, RingPoly};

/// Result of attempting to factor `f = (x − t) · g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootOutcome {
    /// Extraction succeeded: `f = (x − t)·g` and `t` is returned.
    Root(u64),
    /// The candidate `t` from one evaluation point failed full verification —
    /// `f` is *not* `(x − t)·g` for any `t` (corrupt shares or wrong node).
    Inconsistent,
    /// `g` evaluates to zero at every nonzero point (children cover the whole
    /// multiplicative group), so no quotient can be formed.
    Indeterminate,
}

/// Extracts `t` from `f = (x − t)·g`.
///
/// When `verify` is set the candidate is checked by a full ring
/// multiplication (`O(n^2)`), turning silent corruption into
/// [`RootOutcome::Inconsistent`]; without it the cost is `O(n)` per probed
/// point. The engines disable verification in timing runs and enable it in
/// tests — its cost is quantified by the `ablations` bench.
pub fn extract_root(ring: &RingCtx, f: &RingPoly, g: &RingPoly, verify: bool) -> RootOutcome {
    let field = ring.field();
    for v in field.nonzero_elements() {
        let gv = ring.eval(g, v);
        if gv == 0 {
            continue;
        }
        let fv = ring.eval(f, v);
        // f(v) = (v - t) g(v)  =>  t = v - f(v)/g(v)
        let quotient = field.mul(fv, field.inv(gv).expect("gv nonzero"));
        let t = field.sub(v, quotient);
        if verify {
            let recomposed = ring.mul_linear(g, t);
            if &recomposed != f {
                return RootOutcome::Inconsistent;
            }
        }
        return RootOutcome::Root(t);
    }
    RootOutcome::Indeterminate
}

/// Evaluation-domain variant of [`extract_root`]: with `f` and `g` already
/// in the dual representation, every probe is an O(1) component read and —
/// unlike the coefficient-domain version, whose verification is an `O(n²)`
/// ring multiplication — full verification is `O(n)`: `f = (x − t)·g` in the
/// ring iff `f(g^k) = (g^k − t)·g(g^k)` at all `n` points.
pub fn extract_root_evals(ring: &RingCtx, f: &EvalPoly, g: &EvalPoly, verify: bool) -> RootOutcome {
    let field = ring.field();
    for (k, (&gv, &fv)) in g.evals().iter().zip(f.evals()).enumerate() {
        if gv == 0 {
            continue;
        }
        let v = ring.point(k);
        // f(v) = (v - t) g(v)  =>  t = v - f(v)/g(v)
        let quotient = field.mul(fv, field.inv(gv).expect("gv nonzero"));
        let t = field.sub(v, quotient);
        if verify {
            for (j, (&gj, &fj)) in g.evals().iter().zip(f.evals()).enumerate() {
                if fj != field.mul(field.sub(ring.point(j), t), gj) {
                    return RootOutcome::Inconsistent;
                }
            }
        }
        return RootOutcome::Root(t);
    }
    RootOutcome::Indeterminate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_known_root() {
        let ring = RingCtx::new(83, 1).unwrap();
        // children product for tags {7, 7, 19, 44}
        let mut g = ring.one();
        for t in [7u64, 7, 19, 44] {
            g = ring.mul_linear(&g, t);
        }
        let f = ring.mul_linear(&g, 33); // node tag 33
        assert_eq!(extract_root(&ring, &f, &g, true), RootOutcome::Root(33));
        assert_eq!(extract_root(&ring, &f, &g, false), RootOutcome::Root(33));
    }

    #[test]
    fn leaf_case_children_product_is_one() {
        let ring = RingCtx::new(29, 1).unwrap();
        let f = ring.linear(12);
        assert_eq!(
            extract_root(&ring, &f, &ring.one(), true),
            RootOutcome::Root(12)
        );
    }

    #[test]
    fn detects_corruption_with_verify() {
        let ring = RingCtx::new(83, 1).unwrap();
        let g = ring.mul_linear(&ring.linear(5), 9);
        let f = ring.mul_linear(&g, 33);
        // Corrupt one coefficient of f.
        let mut coeffs = f.coeffs().to_vec();
        coeffs[10] = (coeffs[10] + 1) % 83;
        let f_bad = ring.poly_from_coeffs(coeffs).unwrap();
        assert_eq!(
            extract_root(&ring, &f_bad, &g, true),
            RootOutcome::Inconsistent
        );
        // Without verification the corruption may go unnoticed (returns the
        // candidate from the first usable point) — documented trade-off.
        assert!(matches!(
            extract_root(&ring, &f_bad, &g, false),
            RootOutcome::Root(_)
        ));
    }

    #[test]
    fn indeterminate_when_children_cover_group() {
        // F_5: children with tags {1, 2, 3, 4} make g = x^4 - 1 ≡ 0 in the ring.
        let ring = RingCtx::new(5, 1).unwrap();
        let mut g = ring.one();
        for t in 1..5u64 {
            g = ring.mul_linear(&g, t);
        }
        assert!(g.is_zero(), "x^4 - 1 reduces to zero");
        let f = ring.mul_linear(&g, 2);
        assert_eq!(
            extract_root(&ring, &f, &g, true),
            RootOutcome::Indeterminate
        );
    }

    #[test]
    fn skips_points_where_g_vanishes() {
        // g vanishes at its own tags; extraction must skip those points and
        // still succeed from a later one.
        let ring = RingCtx::new(5, 1).unwrap();
        let g = ring.mul_linear(&ring.mul_linear(&ring.one(), 1), 2); // roots 1, 2
        let f = ring.mul_linear(&g, 3);
        assert_eq!(extract_root(&ring, &f, &g, true), RootOutcome::Root(3));
    }

    #[test]
    fn evals_variant_agrees_with_coefficient_variant() {
        for (p, e) in [(5u64, 1u32), (83, 1), (3, 2)] {
            let ring = RingCtx::new(p, e).unwrap();
            let mut g = ring.one();
            for t in [2u64, 2, 3] {
                g = ring.mul_linear(&g, t);
            }
            let f = ring.mul_linear(&g, 1);
            let (fe, ge) = (ring.to_evals(&f), ring.to_evals(&g));
            for verify in [false, true] {
                assert_eq!(
                    extract_root_evals(&ring, &fe, &ge, verify),
                    RootOutcome::Root(1),
                    "p={p} e={e}"
                );
            }
        }
    }

    #[test]
    fn evals_variant_detects_corruption_and_indeterminacy() {
        let ring = RingCtx::new(83, 1).unwrap();
        let g = ring.mul_linear(&ring.linear(5), 9);
        let f = ring.mul_linear(&g, 33);
        let mut coeffs = f.coeffs().to_vec();
        coeffs[10] = (coeffs[10] + 1) % 83;
        let f_bad = ring.poly_from_coeffs(coeffs).unwrap();
        assert_eq!(
            extract_root_evals(&ring, &ring.to_evals(&f_bad), &ring.to_evals(&g), true),
            RootOutcome::Inconsistent
        );
        // g ≡ 0 in the ring: indeterminate, as in the coefficient domain.
        let ring5 = RingCtx::new(5, 1).unwrap();
        let zero = ring5.evals_zero();
        assert_eq!(
            extract_root_evals(&ring5, &zero, &zero, true),
            RootOutcome::Indeterminate
        );
    }

    #[test]
    fn extraction_over_extension_field() {
        let ring = RingCtx::new(3, 2).unwrap(); // F_9, ring length 8
        let mut g = ring.one();
        for t in [2u64, 5, 7] {
            g = ring.mul_linear(&g, t);
        }
        let f = ring.mul_linear(&g, 8);
        assert_eq!(extract_root(&ring, &f, &g, true), RootOutcome::Root(8));
    }
}
