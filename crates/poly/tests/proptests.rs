//! Property-based tests tying the polynomial layer together: the encoding,
//! sharing and packing invariants the whole database rests on.

use proptest::prelude::*;
use ssx_poly::{extract_root, reconstruct, split_with_prg, Packer, RingCtx, RootOutcome};
use ssx_prg::Prg;

fn arb_ring() -> impl Strategy<Value = RingCtx> {
    prop_oneof![
        Just(RingCtx::new(5, 1).unwrap()),
        Just(RingCtx::new(29, 1).unwrap()),
        Just(RingCtx::new(83, 1).unwrap()),
        Just(RingCtx::new(131, 1).unwrap()),
        Just(RingCtx::new(3, 2).unwrap()),
        Just(RingCtx::new(2, 4).unwrap()),
    ]
}

/// A ring together with a multiset of nonzero tag values (a synthetic
/// subtree) — never covering the entire multiplicative group, so the
/// equality test stays determinate.
fn ring_and_tags() -> impl Strategy<Value = (RingCtx, Vec<u64>)> {
    arb_ring().prop_flat_map(|ring| {
        let q = ring.field().order();
        let max_tags = ((q - 2) as usize).clamp(1, 12);
        let tags = proptest::collection::vec(1..(q - 1).max(2), 1..=max_tags);
        (Just(ring), tags)
    })
}

fn product_of(ring: &RingCtx, tags: &[u64]) -> ssx_poly::RingPoly {
    let mut acc = ring.one();
    for &t in tags {
        acc = ring.mul_linear(&acc, t);
    }
    acc
}

proptest! {
    /// The containment test is exact on the plaintext polynomial: it vanishes
    /// at v iff v is one of the factored-in tags.
    #[test]
    fn containment_test_exact((ring, tags) in ring_and_tags()) {
        let f = product_of(&ring, &tags);
        for v in ring.field().nonzero_elements() {
            let vanishes = ring.eval(&f, v) == 0;
            prop_assert_eq!(vanishes, tags.contains(&v), "v = {}", v);
        }
    }

    /// Secret sharing is correct and evaluation-homomorphic.
    #[test]
    fn sharing_round_trips((ring, tags) in ring_and_tags(), key in any::<u64>()) {
        let f = product_of(&ring, &tags);
        let mut prg = Prg::from_u64(key);
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        prop_assert_eq!(reconstruct(&ring, &c, &s), f.clone());
        for v in ring.field().nonzero_elements().take(8) {
            let sum = ring.field().add(ring.eval(&c, v), ring.eval(&s, v));
            prop_assert_eq!(sum, ring.eval(&f, v));
        }
    }

    /// Equality-test root extraction recovers the node's own tag.
    #[test]
    fn root_extraction_recovers_tag((ring, tags) in ring_and_tags()) {
        let q = ring.field().order();
        if q <= 2 { return Ok(()); }
        let g = product_of(&ring, &tags);
        if g.is_zero() { return Ok(()); } // tag multiset annihilated the ring
        let node_tag = 1 + (tags.iter().sum::<u64>() % (q - 1));
        let f = ring.mul_linear(&g, node_tag);
        match extract_root(&ring, &f, &g, true) {
            RootOutcome::Root(t) => prop_assert_eq!(t, node_tag),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Radix and bit packings both round-trip arbitrary ring elements.
    #[test]
    fn packing_round_trips((ring, tags) in ring_and_tags(), key in any::<u64>()) {
        let _ = tags;
        let packer = Packer::new(&ring);
        let mut prg = Prg::from_u64(key);
        let f = ssx_poly::random_poly(&ring, &mut prg);
        let radix = packer.pack_radix(&f);
        prop_assert_eq!(radix.len(), packer.radix_len());
        prop_assert_eq!(packer.unpack_radix(&ring, &radix).unwrap(), f.clone());
        let bits = packer.pack_bits(&f);
        prop_assert_eq!(packer.unpack_bits(&ring, &bits).unwrap(), f);
    }

    /// Ring multiplication is commutative/associative on random elements.
    #[test]
    fn ring_algebra(key in any::<u64>(), ring in arb_ring()) {
        let mut prg = Prg::from_u64(key);
        let a = ssx_poly::random_poly(&ring, &mut prg);
        let b = ssx_poly::random_poly(&ring, &mut prg);
        let c = ssx_poly::random_poly(&ring, &mut prg);
        prop_assert_eq!(ring.mul(&a, &b), ring.mul(&b, &a));
        prop_assert_eq!(ring.mul(&ring.mul(&a, &b), &c), ring.mul(&a, &ring.mul(&b, &c)));
        let left = ring.mul(&a, &ring.add(&b, &c));
        let right = ring.add(&ring.mul(&a, &b), &ring.mul(&a, &c));
        prop_assert_eq!(left, right);
    }

    /// The evaluation map is an exact ring isomorphism: coefficient ↔
    /// evaluation round-trips are the identity, and every operation agrees
    /// between the two domains on random elements.
    #[test]
    fn dual_representation_is_isomorphic(key in any::<u64>(), ring in arb_ring(), t_seed in any::<u64>()) {
        let mut prg = Prg::from_u64(key);
        let a = ssx_poly::random_poly(&ring, &mut prg);
        let b = ssx_poly::random_poly(&ring, &mut prg);
        // Round trip.
        prop_assert_eq!(ring.from_evals(&ring.to_evals(&a)), a.clone());
        // mul agrees.
        let eval_prod = ring.eval_mul(&ring.to_evals(&a), &ring.to_evals(&b));
        prop_assert_eq!(ring.from_evals(&eval_prod), ring.mul(&a, &b));
        // mul_linear agrees at a random nonzero tag.
        let q = ring.field().order();
        let t = 1 + t_seed % (q - 1);
        let mut lin = ring.to_evals(&a);
        ring.eval_mul_linear_assign(&mut lin, t);
        prop_assert_eq!(ring.from_evals(&lin), ring.mul_linear(&a, t));
        // add agrees.
        let mut sum = ring.to_evals(&a);
        ring.eval_add_assign(&mut sum, &ring.to_evals(&b));
        prop_assert_eq!(ring.from_evals(&sum), ring.add(&a, &b));
        // eval agrees at every point (including 0).
        let evals = ring.to_evals(&a);
        for v in ring.field().elements().take(16) {
            prop_assert_eq!(ring.eval_at(&evals, v), ring.eval(&a, v), "v = {}", v);
        }
    }

    /// The evaluation-domain root extraction agrees with the
    /// coefficient-domain one on well-formed inputs.
    #[test]
    fn root_extraction_agrees_between_domains((ring, tags) in ring_and_tags()) {
        let g = product_of(&ring, &tags);
        let t = tags[0]; // any nonzero tag
        let f = ring.mul_linear(&g, t);
        let coeff = extract_root(&ring, &f, &g, true);
        let evals = ssx_poly::extract_root_evals(&ring, &ring.to_evals(&f), &ring.to_evals(&g), true);
        prop_assert_eq!(coeff, evals);
        if let RootOutcome::Root(r) = evals {
            prop_assert_eq!(r, t);
        }
    }
}
