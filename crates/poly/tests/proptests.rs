//! Property-based tests tying the polynomial layer together: the encoding,
//! sharing and packing invariants the whole database rests on.

use proptest::prelude::*;
use ssx_poly::{extract_root, reconstruct, split_with_prg, Packer, RingCtx, RootOutcome};
use ssx_prg::Prg;

fn arb_ring() -> impl Strategy<Value = RingCtx> {
    prop_oneof![
        Just(RingCtx::new(5, 1).unwrap()),
        Just(RingCtx::new(29, 1).unwrap()),
        Just(RingCtx::new(83, 1).unwrap()),
        Just(RingCtx::new(131, 1).unwrap()),
        Just(RingCtx::new(3, 2).unwrap()),
        Just(RingCtx::new(2, 4).unwrap()),
    ]
}

/// A ring together with a multiset of nonzero tag values (a synthetic
/// subtree) — never covering the entire multiplicative group, so the
/// equality test stays determinate.
fn ring_and_tags() -> impl Strategy<Value = (RingCtx, Vec<u64>)> {
    arb_ring().prop_flat_map(|ring| {
        let q = ring.field().order();
        let max_tags = ((q - 2) as usize).clamp(1, 12);
        let tags = proptest::collection::vec(1..(q - 1).max(2), 1..=max_tags);
        (Just(ring), tags)
    })
}

fn product_of(ring: &RingCtx, tags: &[u64]) -> ssx_poly::RingPoly {
    let mut acc = ring.one();
    for &t in tags {
        acc = ring.mul_linear(&acc, t);
    }
    acc
}

proptest! {
    /// The containment test is exact on the plaintext polynomial: it vanishes
    /// at v iff v is one of the factored-in tags.
    #[test]
    fn containment_test_exact((ring, tags) in ring_and_tags()) {
        let f = product_of(&ring, &tags);
        for v in ring.field().nonzero_elements() {
            let vanishes = ring.eval(&f, v) == 0;
            prop_assert_eq!(vanishes, tags.contains(&v), "v = {}", v);
        }
    }

    /// Secret sharing is correct and evaluation-homomorphic.
    #[test]
    fn sharing_round_trips((ring, tags) in ring_and_tags(), key in any::<u64>()) {
        let f = product_of(&ring, &tags);
        let mut prg = Prg::from_u64(key);
        let (c, s) = split_with_prg(&ring, &f, &mut prg);
        prop_assert_eq!(reconstruct(&ring, &c, &s), f.clone());
        for v in ring.field().nonzero_elements().take(8) {
            let sum = ring.field().add(ring.eval(&c, v), ring.eval(&s, v));
            prop_assert_eq!(sum, ring.eval(&f, v));
        }
    }

    /// Equality-test root extraction recovers the node's own tag.
    #[test]
    fn root_extraction_recovers_tag((ring, tags) in ring_and_tags()) {
        let q = ring.field().order();
        if q <= 2 { return Ok(()); }
        let g = product_of(&ring, &tags);
        if g.is_zero() { return Ok(()); } // tag multiset annihilated the ring
        let node_tag = 1 + (tags.iter().sum::<u64>() % (q - 1));
        let f = ring.mul_linear(&g, node_tag);
        match extract_root(&ring, &f, &g, true) {
            RootOutcome::Root(t) => prop_assert_eq!(t, node_tag),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Radix and bit packings both round-trip arbitrary ring elements.
    #[test]
    fn packing_round_trips((ring, tags) in ring_and_tags(), key in any::<u64>()) {
        let _ = tags;
        let packer = Packer::new(&ring);
        let mut prg = Prg::from_u64(key);
        let f = ssx_poly::random_poly(&ring, &mut prg);
        let radix = packer.pack_radix(&f);
        prop_assert_eq!(radix.len(), packer.radix_len());
        prop_assert_eq!(packer.unpack_radix(&ring, &radix).unwrap(), f.clone());
        let bits = packer.pack_bits(&f);
        prop_assert_eq!(packer.unpack_bits(&ring, &bits).unwrap(), f);
    }

    /// Ring multiplication is commutative/associative on random elements.
    #[test]
    fn ring_algebra(key in any::<u64>(), ring in arb_ring()) {
        let mut prg = Prg::from_u64(key);
        let a = ssx_poly::random_poly(&ring, &mut prg);
        let b = ssx_poly::random_poly(&ring, &mut prg);
        let c = ssx_poly::random_poly(&ring, &mut prg);
        prop_assert_eq!(ring.mul(&a, &b), ring.mul(&b, &a));
        prop_assert_eq!(ring.mul(&ring.mul(&a, &b), &c), ring.mul(&a, &ring.mul(&b, &c)));
        let left = ring.mul(&a, &ring.add(&b, &c));
        let right = ring.add(&ring.mul(&a, &b), &ring.mul(&a, &c));
        prop_assert_eq!(left, right);
    }
}
