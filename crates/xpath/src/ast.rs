//! Query AST and the trie translation.

use std::fmt;

/// The element name used for the trie word terminator `⊥`.
///
/// `⊥` itself is not a portable XML name, so the trie transformation and the
/// query translation agree on `"_"` instead.
pub const TRIE_WORD_END: &str = "_";

/// Step direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — children of the current candidates.
    Child,
    /// `//` — all descendants of the current candidates.
    Descendant,
}

/// What a step matches.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A concrete tag name.
    Name(String),
    /// `*` — every node, no filtering.
    Star,
    /// `..` — the parent.
    Parent,
}

/// The `contains(text(), "w")` predicate before trie translation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TextPredicate {
    /// The word searched for (matched case-insensitively against the trie).
    pub word: String,
    /// When true the match is anchored at a word boundary on the right too:
    /// the translated path ends with the terminator node, so "joan" matches
    /// the word *joan* but not *joanna*. `contains` semantics use `false`.
    pub whole_word: bool,
}

/// One location step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// Direction.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Optional text predicate (translated away before execution).
    pub predicate: Option<TextPredicate>,
}

impl Step {
    /// Convenience constructor for a plain step.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicate: None,
        }
    }

    /// `/name`
    pub fn child(name: &str) -> Self {
        Step::new(Axis::Child, NodeTest::Name(name.to_string()))
    }

    /// `//name`
    pub fn descendant(name: &str) -> Self {
        Step::new(Axis::Descendant, NodeTest::Name(name.to_string()))
    }
}

/// A parsed query: a non-empty sequence of steps.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// The steps in order.
    pub steps: Vec<Step>,
}

impl Query {
    /// Builds a query from steps (panics on empty input — parse errors are
    /// the job of [`crate::parse_query`]).
    pub fn new(steps: Vec<Step>) -> Self {
        assert!(!steps.is_empty(), "a query needs at least one step");
        Query { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Queries are never empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of `//` (descendant) steps — the quantity the paper's Fig 7
    /// correlates with accuracy loss.
    pub fn descendant_step_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.axis == Axis::Descendant)
            .count()
    }

    /// True when the query is *absolute*: child steps only. The paper notes
    /// the containment test reaches 100% accuracy on such queries.
    pub fn is_absolute(&self) -> bool {
        self.descendant_step_count() == 0
    }

    /// The distinct tag names tested anywhere in the query, in first-use
    /// order. This is the name set the AdvancedQuery engine look-ahead
    /// checks at every node.
    pub fn names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.steps {
            if let NodeTest::Name(n) = &s.test {
                if !out.contains(&n.as_str()) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Translates every `contains(text(), "w")` predicate into trie path
    /// steps (paper §4):
    ///
    /// `/name[contains(text(), "Joan")]` → `/name//j/o/a/n`
    ///
    /// The first character becomes a descendant step (the word may start at
    /// any depth below the element once data strings are split into words),
    /// the remaining characters child steps; a `whole_word` predicate appends
    /// the terminator node. Characters outside the trie alphabet are
    /// lowercased / dropped exactly like the document-side transformation.
    pub fn expand_text_predicates(&self) -> Query {
        let mut steps = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let mut plain = step.clone();
            let predicate = plain.predicate.take();
            steps.push(plain);
            if let Some(pred) = predicate {
                let chars: Vec<String> = pred
                    .word
                    .to_lowercase()
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric())
                    .map(|c| c.to_string())
                    .collect();
                for (i, c) in chars.iter().enumerate() {
                    let axis = if i == 0 {
                        Axis::Descendant
                    } else {
                        Axis::Child
                    };
                    steps.push(Step::new(axis, NodeTest::Name(c.clone())));
                }
                if pred.whole_word && !chars.is_empty() {
                    steps.push(Step::child(TRIE_WORD_END));
                }
            }
        }
        Query { steps }
    }

    /// True if any step still carries a text predicate (i.e. the query needs
    /// [`Query::expand_text_predicates`] before execution).
    pub fn has_text_predicates(&self) -> bool {
        self.steps.iter().any(|s| s.predicate.is_some())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step.axis {
                Axis::Child => write!(f, "/")?,
                Axis::Descendant => write!(f, "//")?,
            }
            match &step.test {
                NodeTest::Name(n) => write!(f, "{n}")?,
                NodeTest::Star => write!(f, "*")?,
                NodeTest::Parent => write!(f, "..")?,
            }
            if let Some(p) = &step.predicate {
                let func = if p.whole_word { "word" } else { "contains" };
                write!(f, "[{func}(text(), \"{}\")]", p.word)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        let q = Query::new(vec![
            Step::child("site"),
            Step::new(Axis::Child, NodeTest::Star),
            Step::child("person"),
            Step::descendant("city"),
        ]);
        assert_eq!(q.to_string(), "/site/*/person//city");
    }

    #[test]
    fn names_deduplicated_in_order() {
        let q = Query::new(vec![
            Step::child("a"),
            Step::new(Axis::Child, NodeTest::Star),
            Step::descendant("b"),
            Step::child("a"),
        ]);
        assert_eq!(q.names(), vec!["a", "b"]);
    }

    #[test]
    fn absolute_detection() {
        let abs = Query::new(vec![Step::child("a"), Step::child("b")]);
        assert!(abs.is_absolute());
        let rel = Query::new(vec![Step::child("a"), Step::descendant("b")]);
        assert!(!rel.is_absolute());
        assert_eq!(rel.descendant_step_count(), 1);
    }

    #[test]
    fn paper_trie_translation_example() {
        // /name[contains(text(), "Joan")] -> /name//j/o/a/n
        let q = Query::new(vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name("name".into()),
            predicate: Some(TextPredicate {
                word: "Joan".into(),
                whole_word: false,
            }),
        }]);
        let expanded = q.expand_text_predicates();
        assert_eq!(expanded.to_string(), "/name//j/o/a/n");
        assert!(!expanded.has_text_predicates());
    }

    #[test]
    fn whole_word_appends_terminator() {
        let q = Query::new(vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name("name".into()),
            predicate: Some(TextPredicate {
                word: "jo".into(),
                whole_word: true,
            }),
        }]);
        assert_eq!(q.expand_text_predicates().to_string(), "/name//j/o/_");
    }

    #[test]
    fn non_alphanumerics_dropped_in_translation() {
        let q = Query::new(vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name("name".into()),
            predicate: Some(TextPredicate {
                word: "O'Neil 3".into(),
                whole_word: false,
            }),
        }]);
        assert_eq!(q.expand_text_predicates().to_string(), "/name//o/n/e/i/l/3");
    }

    #[test]
    fn expansion_without_predicates_is_identity() {
        let q = Query::new(vec![Step::child("a"), Step::descendant("b")]);
        assert_eq!(q.expand_text_predicates(), q);
    }
}
