#![warn(missing_docs)]

//! The XPath subset of the paper (§5.3) plus the trie query translation (§4).
//!
//! Supported grammar:
//!
//! ```text
//! query     := step+
//! step      := ("/" | "//") test predicate?
//! test      := NAME | "*" | ".."
//! predicate := "[" "contains(text()," STRING ")" "]"
//! ```
//!
//! * `/` selects children, `//` selects descendants.
//! * `*` matches every child ("reduces the workload because no additional
//!   filtering is needed" — §5.3); `..` matches the parent.
//! * `contains(text(), "w")` is the paper's §4 text search: before execution
//!   it is *translated* into trie path steps, e.g.
//!   `/name[contains(text(), "Joan")]` becomes `/name//j/o/a/n`
//!   (lowercased to match the trie alphabet).
//!
//! [`Query`] is the parsed form; [`Query::expand_text_predicates`] performs
//! the trie translation so the engines only ever see structural steps.

pub mod ast;
pub mod parse;

pub use ast::{Axis, NodeTest, Query, Step, TextPredicate, TRIE_WORD_END};
pub use parse::{parse_query, ParseError};
