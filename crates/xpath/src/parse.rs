//! Hand-rolled recursive-descent parser for the query grammar.

use crate::ast::{Axis, NodeTest, Query, Step, TextPredicate};
use std::fmt;

/// Parse errors with character positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a query string like `/site/*/person//city` or
/// `/name[contains(text(), "Joan")]`.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        text: input,
        pos: 0,
    };
    p.skip_ws();
    let mut steps = Vec::new();
    while p.pos < p.input.len() {
        steps.push(p.step()?);
        p.skip_ws();
    }
    if steps.is_empty() {
        return Err(ParseError {
            pos: 0,
            msg: "empty query".into(),
        });
    }
    Ok(Query::new(steps))
}

struct Parser<'a> {
    input: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn step(&mut self) -> Result<Step, ParseError> {
        if !self.eat(b'/') {
            return Err(self.err("expected '/'"));
        }
        let axis = if self.eat(b'/') {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let test = self.node_test()?;
        let predicate = if self.peek() == Some(b'[') {
            Some(self.predicate()?)
        } else {
            None
        };
        if predicate.is_some() && !matches!(test, NodeTest::Name(_)) {
            return Err(self.err("text predicates only apply to named steps"));
        }
        Ok(Step {
            axis,
            test,
            predicate,
        })
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Ok(NodeTest::Star)
            }
            Some(b'.') => {
                if self.input[self.pos..].starts_with(b"..") {
                    self.pos += 2;
                    Ok(NodeTest::Parent)
                } else {
                    Err(self.err("expected '..'"))
                }
            }
            _ => {
                let name = self.name()?;
                Ok(NodeTest::Name(name))
            }
        }
    }

    fn predicate(&mut self) -> Result<TextPredicate, ParseError> {
        self.expect(b'[')?;
        self.skip_ws();
        let whole_word = if self.eat_keyword("contains") {
            false
        } else if self.eat_keyword("word") {
            true
        } else {
            return Err(self.err("expected 'contains' or 'word'"));
        };
        self.skip_ws();
        self.expect(b'(')?;
        self.skip_ws();
        if !self.eat_keyword("text") {
            return Err(self.err("expected 'text()'"));
        }
        self.skip_ws();
        self.expect(b'(')?;
        self.skip_ws();
        self.expect(b')')?;
        self.skip_ws();
        self.expect(b',')?;
        self.skip_ws();
        let word = self.quoted()?;
        self.skip_ws();
        self.expect(b')')?;
        self.skip_ws();
        self.expect(b']')?;
        Ok(TextPredicate { word, whole_word })
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() && is_name_byte(self.input[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a tag name"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted string")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(ParseError {
                pos: start,
                msg: "unterminated string".into(),
            });
        }
        let s = self.text[start..self.pos].to_string();
        self.pos += 1;
        Ok(s)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    // '.' is excluded from names so that '..' lexes as the parent test.
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeTest, Step};

    #[test]
    fn paper_table1_queries() {
        // All nine Table-1 queries parse into pure child chains.
        let q9 = "/site/regions/europe/item/description/parlist/listitem/text/keyword";
        for len in 1..=9 {
            let parts: Vec<&str> = q9.trim_start_matches('/').split('/').collect();
            let query_text = format!("/{}", parts[..len].join("/"));
            let q = parse_query(&query_text).unwrap();
            assert_eq!(q.len(), len);
            assert!(q.is_absolute());
            assert_eq!(q.to_string(), query_text);
        }
    }

    #[test]
    fn paper_table2_queries() {
        let cases = [
            ("/site//europe/item", 3, 1),
            ("/site//europe//item", 3, 2),
            ("/site/*/person//city", 4, 1),
            ("/*/*/open_auction/bidder/date", 5, 0),
            ("//bidder/date", 2, 1),
        ];
        for (text, steps, desc) in cases {
            let q = parse_query(text).unwrap();
            assert_eq!(q.len(), steps, "{text}");
            assert_eq!(q.descendant_step_count(), desc, "{text}");
            assert_eq!(q.to_string(), text, "round trip");
        }
    }

    #[test]
    fn star_and_parent_tests() {
        let q = parse_query("/a/*/../b").unwrap();
        assert_eq!(q.steps[1].test, NodeTest::Star);
        assert_eq!(q.steps[2].test, NodeTest::Parent);
        assert_eq!(q.to_string(), "/a/*/../b");
    }

    #[test]
    fn contains_predicate() {
        let q = parse_query(r#"/name[contains(text(), "Joan")]"#).unwrap();
        assert!(q.has_text_predicates());
        let p = q.steps[0].predicate.as_ref().unwrap();
        assert_eq!(p.word, "Joan");
        assert!(!p.whole_word);
        // Whitespace variations accepted.
        assert!(parse_query(r#"/name[ contains( text( ) , 'Joan' ) ]"#).is_ok());
    }

    #[test]
    fn word_predicate() {
        let q = parse_query(r#"/name[word(text(), "joan")]"#).unwrap();
        assert!(q.steps[0].predicate.as_ref().unwrap().whole_word);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("site").is_err(), "must start with /");
        assert!(
            parse_query("/site/").is_err(),
            "trailing slash needs a test"
        );
        assert!(
            parse_query("/a[contains(text(), \"x\"").is_err(),
            "unterminated"
        );
        assert!(
            parse_query("/a[foo(text(), \"x\")]").is_err(),
            "unknown function"
        );
        assert!(
            parse_query("/*[contains(text(), \"x\")]").is_err(),
            "predicate on *"
        );
        assert!(
            parse_query("/a[contains(text(), \"x)]").is_err(),
            "unterminated string"
        );
    }

    #[test]
    fn constructed_equals_parsed() {
        let q = parse_query("/site//europe/item").unwrap();
        let manual = crate::ast::Query::new(vec![
            Step::child("site"),
            Step::descendant("europe"),
            Step::new(Axis::Child, NodeTest::Name("item".into())),
        ]);
        assert_eq!(q, manual);
    }

    #[test]
    fn xmark_names_with_underscores() {
        let q = parse_query("/site/open_auctions/open_auction").unwrap();
        assert_eq!(q.names(), vec!["site", "open_auctions", "open_auction"]);
    }
}
