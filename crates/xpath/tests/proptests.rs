//! Property tests: Display/parse round-trips for arbitrary structurally valid
//! queries.

use proptest::prelude::*;
use ssx_xpath::{parse_query, Axis, NodeTest, Query, Step, TextPredicate};

fn arb_step() -> impl Strategy<Value = Step> {
    let axis = prop_oneof![Just(Axis::Child), Just(Axis::Descendant)];
    let name = prop_oneof![
        Just("site".to_string()),
        Just("open_auction".to_string()),
        Just("person".to_string()),
        Just("city".to_string()),
        Just("a1".to_string()),
        Just("b-c".to_string()),
    ];
    let test = prop_oneof![
        name.clone().prop_map(NodeTest::Name),
        Just(NodeTest::Star),
        Just(NodeTest::Parent),
    ];
    let word = "[a-zA-Z]{1,8}";
    let predicate = proptest::option::of((word, any::<bool>()).prop_map(|(w, ww)| TextPredicate {
        word: w,
        whole_word: ww,
    }));
    (axis, test, predicate).prop_map(|(axis, test, predicate)| {
        // Predicates only attach to named steps (grammar restriction).
        let predicate = if matches!(test, NodeTest::Name(_)) {
            predicate
        } else {
            None
        };
        Step {
            axis,
            test,
            predicate,
        }
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    proptest::collection::vec(arb_step(), 1..8).prop_map(Query::new)
}

proptest! {
    #[test]
    fn display_parse_round_trip(q in arb_query()) {
        let text = q.to_string();
        let back = parse_query(&text).expect("displayed query parses");
        prop_assert_eq!(back, q);
    }

    #[test]
    fn expansion_removes_predicates(q in arb_query()) {
        let expanded = q.expand_text_predicates();
        prop_assert!(!expanded.has_text_predicates());
        // Expansion never shrinks the query.
        prop_assert!(expanded.len() >= q.len());
        // And expanded queries still round-trip through the parser.
        let text = expanded.to_string();
        prop_assert_eq!(parse_query(&text).unwrap(), expanded);
    }

    #[test]
    fn names_subset_of_step_names(q in arb_query()) {
        let names = q.names();
        for n in &names {
            let appears = q.steps.iter().any(|s| matches!(&s.test, NodeTest::Name(m) if m == n));
            prop_assert!(appears);
        }
        // Dedup: no repeats.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), names.len());
    }
}
