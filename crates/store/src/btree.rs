//! An in-memory B-tree (CLRS layout) over `u64` keys and values.
//!
//! Minimum degree `T = 32`: every node except the root holds between
//! `T − 1` and `2T − 1` keys, so trees stay shallow (3 levels cover ~260k
//! keys) and range scans are cache-friendly. Nodes live in an arena; child
//! links are indices, which keeps the structure compact and lets
//! [`BTree::byte_size`] report honest index sizes for the Fig 4 series.

/// Minimum degree (CLRS `t`). Nodes hold `T-1 ..= 2T-1` keys.
const T: usize = 32;
const MAX_KEYS: usize = 2 * T - 1;

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u64>,
    vals: Vec<u64>,
    /// Child arena indices; empty for leaves.
    children: Vec<u32>,
}

impl Node {
    fn leaf() -> Self {
        Node {
            keys: Vec::with_capacity(MAX_KEYS),
            vals: Vec::with_capacity(MAX_KEYS),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }
}

/// A `u64 → u64` B-tree with unique keys.
#[derive(Debug, Clone)]
pub struct BTree {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    /// Arena slots vacated by merges during [`BTree::remove`]; reused by the
    /// next split so the arena never leaks under churn.
    free: Vec<u32>,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// Empty tree.
    pub fn new() -> Self {
        BTree {
            nodes: vec![Node::leaf()],
            root: 0,
            len: 0,
            free: Vec::new(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key → val`. Returns the previous value when `key` was
    /// already present (and replaces it).
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        // Replace in place when present (B-tree keys are unique here).
        if let Some(old) = self.replace(key, val) {
            return Some(old);
        }
        if self.nodes[self.root as usize].is_full() {
            // Grow: new root with the old root as single child, then split.
            let old_root = self.root;
            let mut new_root = Node::leaf();
            new_root.children.push(old_root);
            self.root = self.alloc(new_root);
            self.split_child(self.root, 0);
        }
        self.insert_nonfull(self.root, key, val);
        self.len += 1;
        None
    }

    /// Inserts `key → val` only if `key` is absent; returns `true` on
    /// insertion and `false` (leaving the stored entries unchanged) when the
    /// key is already present. One root-to-leaf descent with preemptive
    /// splitting — the fast path for callers that would otherwise pair
    /// [`BTree::contains`] with [`BTree::insert`]. A duplicate discovered
    /// mid-descent may leave nodes split differently, which changes the
    /// arena shape but never the stored map.
    pub fn insert_new(&mut self, key: u64, val: u64) -> bool {
        if self.nodes[self.root as usize].is_full() {
            let old_root = self.root;
            let mut new_root = Node::leaf();
            new_root.children.push(old_root);
            self.root = self.alloc(new_root);
            self.split_child(self.root, 0);
        }
        let mut node = self.root;
        loop {
            let n = &self.nodes[node as usize];
            let i = match n.keys.binary_search(&key) {
                Ok(_) => return false,
                Err(i) => i,
            };
            if n.is_leaf() {
                let n = &mut self.nodes[node as usize];
                n.keys.insert(i, key);
                n.vals.insert(i, val);
                self.len += 1;
                return true;
            }
            let child = n.children[i];
            if self.nodes[child as usize].is_full() {
                self.split_child(node, i);
                // The split may have moved the target range — and the median
                // that rose into this node may itself be the key.
                let n = &self.nodes[node as usize];
                match n.keys.binary_search(&key) {
                    Ok(_) => return false,
                    Err(i) => node = n.children[i],
                }
            } else {
                node = child;
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut node = self.root;
        loop {
            let n = &self.nodes[node as usize];
            match n.keys.binary_search(&key) {
                Ok(i) => return Some(n.vals[i]),
                Err(i) => {
                    if n.is_leaf() {
                        return None;
                    }
                    node = n.children[i];
                }
            }
        }
    }

    /// True when `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Ordered iterator over entries with `lo <= key <= hi`.
    pub fn range(&self, lo: u64, hi: u64) -> RangeIter<'_> {
        let mut iter = RangeIter {
            tree: self,
            stack: Vec::new(),
            hi,
        };
        if lo <= hi {
            iter.descend_to_lower_bound(self.root, lo);
        }
        iter
    }

    /// Ordered iterator over all entries.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(0, u64::MAX)
    }

    /// First entry with `key >= lo`.
    pub fn lower_bound(&self, lo: u64) -> Option<(u64, u64)> {
        self.range(lo, u64::MAX).next()
    }

    /// Number of live arena nodes (tests + size accounting).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Approximate heap footprint in bytes: keys + values (8 each) and child
    /// links (4), plus a fixed per-node header — the measure reported as
    /// "index size" in the Fig 4 reproduction. Freed slots are cleared on
    /// merge, so they cost a header each until reused.
    pub fn byte_size(&self) -> usize {
        const NODE_HEADER: usize = 3 * 24; // three Vec headers
        self.nodes
            .iter()
            .map(|n| NODE_HEADER + n.keys.len() * 8 + n.vals.len() * 8 + n.children.len() * 4)
            .sum()
    }

    /// Validates the B-tree structural invariants (tests and persistence
    /// loading): key ordering inside nodes, key-range separation across
    /// children, minimum fill of non-root nodes, and uniform leaf depth.
    /// Returns the total number of keys seen.
    pub fn check_invariants(&self) -> Result<usize, String> {
        let mut leaf_depth = None;
        let count = self.check_node(self.root, None, None, 0, &mut leaf_depth, true)?;
        if count != self.len {
            return Err(format!("len {} != counted {}", self.len, count));
        }
        Ok(count)
    }

    fn check_node(
        &self,
        node: u32,
        lo: Option<u64>,
        hi: Option<u64>,
        depth: usize,
        leaf_depth: &mut Option<usize>,
        is_root: bool,
    ) -> Result<usize, String> {
        let n = &self.nodes[node as usize];
        if n.keys.len() != n.vals.len() {
            return Err("keys/vals length mismatch".into());
        }
        if !is_root && n.keys.len() < T - 1 {
            return Err(format!("underfull node: {} keys", n.keys.len()));
        }
        if n.keys.len() > MAX_KEYS {
            return Err("overfull node".into());
        }
        for w in n.keys.windows(2) {
            if w[0] >= w[1] {
                return Err("keys not strictly increasing".into());
            }
        }
        if let (Some(lo), Some(&first)) = (lo, n.keys.first()) {
            if first <= lo {
                return Err("key below subtree lower bound".into());
            }
        }
        if let (Some(hi), Some(&last)) = (hi, n.keys.last()) {
            if last >= hi {
                return Err("key above subtree upper bound".into());
            }
        }
        if n.is_leaf() {
            match *leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) if d != depth => return Err("leaves at different depths".into()),
                _ => {}
            }
            return Ok(n.keys.len());
        }
        if n.children.len() != n.keys.len() + 1 {
            return Err("child count != key count + 1".into());
        }
        let mut total = n.keys.len();
        for (i, &child) in n.children.iter().enumerate() {
            let child_lo = if i == 0 { lo } else { Some(n.keys[i - 1]) };
            let child_hi = if i == n.keys.len() {
                hi
            } else {
                Some(n.keys[i])
            };
            total += self.check_node(child, child_lo, child_hi, depth + 1, leaf_depth, false)?;
        }
        Ok(total)
    }

    fn replace(&mut self, key: u64, val: u64) -> Option<u64> {
        let mut node = self.root;
        loop {
            let n = &self.nodes[node as usize];
            match n.keys.binary_search(&key) {
                Ok(i) => {
                    let old = self.nodes[node as usize].vals[i];
                    self.nodes[node as usize].vals[i] = val;
                    return Some(old);
                }
                Err(i) => {
                    if n.is_leaf() {
                        return None;
                    }
                    node = n.children[i];
                }
            }
        }
    }

    /// Claims an arena slot for `node`, preferring slots freed by merges.
    fn alloc(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Returns `node`'s arena slot to the free list. The slot's vectors are
    /// cleared so it costs only a header until reused.
    fn free_node(&mut self, node: u32) {
        let n = &mut self.nodes[node as usize];
        n.keys = Vec::new();
        n.vals = Vec::new();
        n.children = Vec::new();
        self.free.push(node);
    }

    /// Splits the full `i`-th child of `parent` (CLRS B-TREE-SPLIT-CHILD).
    fn split_child(&mut self, parent: u32, i: usize) {
        let child_idx = self.nodes[parent as usize].children[i];
        let (mid_key, mid_val, right) = {
            let child = &mut self.nodes[child_idx as usize];
            debug_assert!(child.is_full());
            let mut right = Node::leaf();
            right.keys = child.keys.split_off(T);
            right.vals = child.vals.split_off(T);
            if !child.is_leaf() {
                right.children = child.children.split_off(T);
            }
            let mid_key = child.keys.pop().expect("median key");
            let mid_val = child.vals.pop().expect("median val");
            (mid_key, mid_val, right)
        };
        let right_idx = self.alloc(right);
        let parent_node = &mut self.nodes[parent as usize];
        parent_node.keys.insert(i, mid_key);
        parent_node.vals.insert(i, mid_val);
        parent_node.children.insert(i + 1, right_idx);
    }

    /// Removes `key`, returning its value when present. CLRS B-TREE-DELETE:
    /// one root-to-leaf descent that preemptively refills any minimum-width
    /// node on the path (borrow from a sibling, else merge), so every
    /// structural invariant — minimum fill, uniform leaf depth, key-range
    /// separation — holds on exit. Arena slots vacated by merges go to the
    /// free list and are reused by later splits.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        // Read-only presence probe: the fixup descent below assumes the key
        // exists, and a miss must not reshape the tree.
        if !self.contains(key) {
            return None;
        }
        let val = self.delete_from(self.root, key);
        // Shrink: an empty internal root hands the tree to its only child.
        let r = &self.nodes[self.root as usize];
        if r.keys.is_empty() && !r.is_leaf() {
            let old = self.root;
            self.root = r.children[0];
            self.free_node(old);
        }
        self.len -= 1;
        Some(val)
    }

    /// Deletes `key` (guaranteed present) from the subtree at `node`,
    /// returning its value. `node` always has ≥ T keys on entry unless it is
    /// the root.
    fn delete_from(&mut self, node: u32, key: u64) -> u64 {
        let n = &self.nodes[node as usize];
        match n.keys.binary_search(&key) {
            Ok(i) if n.is_leaf() => {
                // Case 1: delete directly from the leaf.
                let n = &mut self.nodes[node as usize];
                n.keys.remove(i);
                n.vals.remove(i)
            }
            Ok(i) => {
                let left = n.children[i];
                let right = n.children[i + 1];
                let val = n.vals[i];
                if self.nodes[left as usize].keys.len() >= T {
                    // Case 2a: overwrite with the predecessor, then delete
                    // the predecessor from the (wide enough) left subtree.
                    let (pk, pv) = self.max_entry(left);
                    let n = &mut self.nodes[node as usize];
                    n.keys[i] = pk;
                    n.vals[i] = pv;
                    self.delete_from(left, pk);
                    val
                } else if self.nodes[right as usize].keys.len() >= T {
                    // Case 2b: symmetric, with the successor.
                    let (sk, sv) = self.min_entry(right);
                    let n = &mut self.nodes[node as usize];
                    n.keys[i] = sk;
                    n.vals[i] = sv;
                    self.delete_from(right, sk);
                    val
                } else {
                    // Case 2c: both children minimal — merge them around the
                    // key and delete from the merged node.
                    self.merge_children(node, i);
                    self.delete_from(left, key)
                }
            }
            Err(i) => {
                // Case 3: the key lives in child i; widen it first if it is
                // at minimum so the recursive delete cannot underflow.
                let child = self.ensure_child_min(node, i);
                self.delete_from(child, key)
            }
        }
    }

    /// Rightmost entry of the subtree at `node`.
    fn max_entry(&self, mut node: u32) -> (u64, u64) {
        loop {
            let n = &self.nodes[node as usize];
            if n.is_leaf() {
                let last = n.keys.len() - 1;
                return (n.keys[last], n.vals[last]);
            }
            node = *n.children.last().expect("internal node has children");
        }
    }

    /// Leftmost entry of the subtree at `node`.
    fn min_entry(&self, mut node: u32) -> (u64, u64) {
        loop {
            let n = &self.nodes[node as usize];
            if n.is_leaf() {
                return (n.keys[0], n.vals[0]);
            }
            node = n.children[0];
        }
    }

    /// Guarantees the `i`-th child of `node` has ≥ T keys before a delete
    /// descends into it, borrowing from an adjacent sibling when one is wide
    /// enough and merging otherwise. Returns the arena index of the child to
    /// descend into (the merged node when a merge happened).
    fn ensure_child_min(&mut self, node: u32, i: usize) -> u32 {
        let child = self.nodes[node as usize].children[i];
        if self.nodes[child as usize].keys.len() >= T {
            return child;
        }
        let key_count = self.nodes[node as usize].keys.len();
        if i > 0 {
            let left = self.nodes[node as usize].children[i - 1];
            if self.nodes[left as usize].keys.len() >= T {
                self.rotate_from_left(node, i);
                return child;
            }
        }
        if i < key_count {
            let right = self.nodes[node as usize].children[i + 1];
            if self.nodes[right as usize].keys.len() >= T {
                self.rotate_from_right(node, i);
                return child;
            }
        }
        // Both neighbours minimal: merge with one of them.
        if i < key_count {
            self.merge_children(node, i);
            child
        } else {
            self.merge_children(node, i - 1);
            self.nodes[node as usize].children[i - 1]
        }
    }

    /// Moves the last entry of child `i − 1` up to separator `i − 1` and the
    /// old separator down to the front of child `i` (a right rotation).
    fn rotate_from_left(&mut self, node: u32, i: usize) {
        let left = self.nodes[node as usize].children[i - 1];
        let child = self.nodes[node as usize].children[i];
        let (lk, lv, lc) = {
            let l = &mut self.nodes[left as usize];
            (
                l.keys.pop().expect("left sibling non-empty"),
                l.vals.pop().expect("left sibling non-empty"),
                l.children.pop(),
            )
        };
        let n = &mut self.nodes[node as usize];
        let sk = std::mem::replace(&mut n.keys[i - 1], lk);
        let sv = std::mem::replace(&mut n.vals[i - 1], lv);
        let c = &mut self.nodes[child as usize];
        c.keys.insert(0, sk);
        c.vals.insert(0, sv);
        if let Some(lc) = lc {
            c.children.insert(0, lc);
        }
    }

    /// Moves the first entry of child `i + 1` up to separator `i` and the
    /// old separator down to the back of child `i` (a left rotation).
    fn rotate_from_right(&mut self, node: u32, i: usize) {
        let right = self.nodes[node as usize].children[i + 1];
        let child = self.nodes[node as usize].children[i];
        let (rk, rv, rc) = {
            let r = &mut self.nodes[right as usize];
            let rc = if r.is_leaf() {
                None
            } else {
                Some(r.children.remove(0))
            };
            (r.keys.remove(0), r.vals.remove(0), rc)
        };
        let n = &mut self.nodes[node as usize];
        let sk = std::mem::replace(&mut n.keys[i], rk);
        let sv = std::mem::replace(&mut n.vals[i], rv);
        let c = &mut self.nodes[child as usize];
        c.keys.push(sk);
        c.vals.push(sv);
        if let Some(rc) = rc {
            c.children.push(rc);
        }
    }

    /// Merges child `i + 1` and separator `i` into child `i` (both children
    /// at minimum width), freeing the right child's arena slot.
    fn merge_children(&mut self, node: u32, i: usize) {
        let (sk, sv, right_idx) = {
            let n = &mut self.nodes[node as usize];
            let sk = n.keys.remove(i);
            let sv = n.vals.remove(i);
            let right_idx = n.children.remove(i + 1);
            (sk, sv, right_idx)
        };
        let left_idx = self.nodes[node as usize].children[i];
        let mut right = std::mem::replace(&mut self.nodes[right_idx as usize], Node::leaf());
        let left = &mut self.nodes[left_idx as usize];
        left.keys.push(sk);
        left.vals.push(sv);
        left.keys.append(&mut right.keys);
        left.vals.append(&mut right.vals);
        left.children.append(&mut right.children);
        self.free.push(right_idx);
    }

    fn insert_nonfull(&mut self, mut node: u32, key: u64, val: u64) {
        loop {
            let n = &self.nodes[node as usize];
            let i = match n.keys.binary_search(&key) {
                Ok(_) => unreachable!("replace() handled existing keys"),
                Err(i) => i,
            };
            if n.is_leaf() {
                let n = &mut self.nodes[node as usize];
                n.keys.insert(i, key);
                n.vals.insert(i, val);
                return;
            }
            let child = n.children[i];
            if self.nodes[child as usize].is_full() {
                self.split_child(node, i);
                // The split may have moved the target range.
                let n = &self.nodes[node as usize];
                let i = match n.keys.binary_search(&key) {
                    Ok(_) => unreachable!("median key equal to inserted key"),
                    Err(i) => i,
                };
                node = n.children[i];
            } else {
                node = child;
            }
        }
    }
}

/// Ordered range iterator. Holds an explicit descent stack; `O(log n)` space.
pub struct RangeIter<'a> {
    tree: &'a BTree,
    /// `(node, next index)` — for internal nodes, `index` counts entries;
    /// invariant: when popped, emit key `index` then descend child `index+1`.
    stack: Vec<(u32, usize)>,
    hi: u64,
}

impl<'a> RangeIter<'a> {
    fn descend_to_lower_bound(&mut self, mut node: u32, lo: u64) {
        loop {
            let n = &self.tree.nodes[node as usize];
            let i = n.keys.partition_point(|&k| k < lo);
            self.stack.push((node, i));
            if n.is_leaf() {
                return;
            }
            node = n.children[i];
        }
    }
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let &(node, i) = self.stack.last()?;
            let n = &self.tree.nodes[node as usize];
            if i >= n.keys.len() {
                self.stack.pop();
                continue;
            }
            let key = n.keys[i];
            if key > self.hi {
                self.stack.clear();
                return None;
            }
            let val = n.vals[i];
            // Advance: past this entry, then descend into the right child.
            self.stack.last_mut().expect("non-empty").1 = i + 1;
            if !n.is_leaf() {
                let child = n.children[i + 1];
                self.descend_leftmost(child);
            }
            return Some((key, val));
        }
    }
}

impl<'a> RangeIter<'a> {
    fn descend_leftmost(&mut self, mut node: u32) {
        loop {
            self.stack.push((node, 0));
            let n = &self.tree.nodes[node as usize];
            if n.is_leaf() {
                return;
            }
            node = n.children[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BTree::new();
        assert!(t.is_empty());
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
        assert!(t.contains(9));
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_new_rejects_duplicates_without_mutation() {
        // Differential check against a model map across orders that force
        // splits: insert_new must insert exactly the absent keys and leave
        // present keys' values untouched, including the median-promotion
        // duplicate case mid-descent.
        let mut t = BTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let keys: Vec<u64> = (0..4000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1500)
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            let fresh = t.insert_new(k, i as u64);
            assert_eq!(fresh, !model.contains_key(&k), "key {k}");
            model.entry(k).or_insert(i as u64);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), model.len());
        for (&k, &v) in &model {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn replace_returns_old() {
        let mut t = BTree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(20));
    }

    #[test]
    fn sequential_inserts_force_splits() {
        let mut t = BTree::new();
        let n = 10_000u64;
        for k in 0..n {
            t.insert(k, k ^ 0xabcd);
        }
        assert_eq!(t.len(), n as usize);
        t.check_invariants().unwrap();
        assert!(t.node_count() > 100, "splits must have happened");
        for k in (0..n).step_by(97) {
            assert_eq!(t.get(k), Some(k ^ 0xabcd));
        }
    }

    #[test]
    fn reverse_and_interleaved_inserts() {
        let mut t = BTree::new();
        for k in (0..5000u64).rev() {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        let mut t2 = BTree::new();
        // Zig-zag order.
        for i in 0..2500u64 {
            t2.insert(i, i);
            t2.insert(4999 - i, 4999 - i);
        }
        t2.check_invariants().unwrap();
        assert_eq!(t2.len(), 5000);
    }

    #[test]
    fn range_scan_matches_model() {
        let mut t = BTree::new();
        let mut model = BTreeMap::new();
        // Pseudo-random keys via a multiplicative walk.
        let mut k = 1u64;
        for i in 0..3000u64 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k % 10_000;
            t.insert(key, i);
            model.insert(key, i);
        }
        t.check_invariants().unwrap();
        for (lo, hi) in [
            (0u64, 10_000u64),
            (500, 600),
            (9990, 10_500),
            (42, 42),
            (7, 3),
        ] {
            let got: Vec<(u64, u64)> = t.range(lo, hi).collect();
            let want: Vec<(u64, u64)> = model
                .range(lo..=hi.max(lo))
                .map(|(&k, &v)| (k, v))
                .collect();
            let want = if lo > hi { vec![] } else { want };
            assert_eq!(got, want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn full_iteration_sorted() {
        let mut t = BTree::new();
        for k in [9u64, 2, 7, 4, 1, 8, 3, 0, 6, 5] {
            t.insert(k, 100 + k);
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lower_bound() {
        let mut t = BTree::new();
        for k in [10u64, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.lower_bound(0), Some((10, 10)));
        assert_eq!(t.lower_bound(10), Some((10, 10)));
        assert_eq!(t.lower_bound(11), Some((20, 20)));
        assert_eq!(t.lower_bound(31), None);
    }

    #[test]
    fn extreme_keys() {
        let mut t = BTree::new();
        t.insert(0, 1);
        t.insert(u64::MAX, 2);
        assert_eq!(t.get(0), Some(1));
        assert_eq!(t.get(u64::MAX), Some(2));
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, 1), (u64::MAX, 2)]);
    }

    #[test]
    fn byte_size_grows_with_content() {
        let mut t = BTree::new();
        let empty = t.byte_size();
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        assert!(
            t.byte_size() > empty + 1000 * 16 / 2,
            "size must reflect entries"
        );
    }

    #[test]
    fn empty_range_on_empty_tree() {
        let t = BTree::new();
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.range(5, 10).count(), 0);
        assert_eq!(t.lower_bound(0), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_small() {
        let mut t = BTree::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.remove(3), Some(30));
        assert_eq!(t.remove(3), None, "second remove misses");
        assert_eq!(t.remove(99), None, "absent key misses");
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(5), Some(50));
        t.check_invariants().unwrap();
        for k in [5u64, 1, 9, 7] {
            assert_eq!(t.remove(k), Some(k * 10));
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_miss_does_not_reshape() {
        // A miss must not split/merge anything: same arena, same contents.
        let mut t = BTree::new();
        for k in 0..500u64 {
            t.insert(k * 2, k);
        }
        let nodes_before = t.node_count();
        for k in 0..500u64 {
            assert_eq!(t.remove(k * 2 + 1), None);
        }
        assert_eq!(t.node_count(), nodes_before);
        assert_eq!(t.len(), 500);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_all_sequential_forces_merges() {
        // Enough keys for a 3-level tree; ascending removal walks every
        // rebalancing case (leaf delete, borrow left/right, merge, root
        // shrink) and the invariant check runs after every step.
        let n = 10_000u64;
        let mut t = BTree::new();
        for k in 0..n {
            t.insert(k, k ^ 0x5a5a);
        }
        let peak_nodes = t.node_count();
        for k in 0..n {
            assert_eq!(t.remove(k), Some(k ^ 0x5a5a), "key {k}");
            if k % 512 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        assert_eq!(t.node_count(), 1, "empty tree is a single leaf root");
        // Freed slots must be reusable: refill and stay near the old arena.
        for k in 0..n {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        assert!(
            t.node_count() <= peak_nodes + 1,
            "refill must reuse freed arena slots ({} vs peak {peak_nodes})",
            t.node_count()
        );
    }

    #[test]
    fn remove_interior_keys_from_internal_nodes() {
        // Deleting in an order that repeatedly hits internal-node keys
        // (case 2 of CLRS delete): remove every 64th key first — with
        // T = 32 those are frequently separators — then everything else.
        let n = 8_192u64;
        let mut t = BTree::new();
        let mut model = BTreeMap::new();
        for k in 0..n {
            t.insert(k, n - k);
            model.insert(k, n - k);
        }
        for k in (0..n).step_by(64) {
            assert_eq!(t.remove(k), model.remove(&k), "key {k}");
        }
        t.check_invariants().unwrap();
        let got: Vec<(u64, u64)> = t.iter().collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_insert_remove_churn() {
        let mut t = BTree::new();
        let mut model = BTreeMap::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 4000;
            if x & 1 == 0 {
                assert_eq!(t.insert(key, i), model.insert(key, i), "insert {key}");
            } else {
                assert_eq!(t.remove(key), model.remove(&key), "remove {key}");
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), model.len());
        let got: Vec<(u64, u64)> = t.iter().collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }
}
