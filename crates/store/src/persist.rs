//! Checksummed single-file persistence for [`Table`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"SSXDB\x01\0\0"
//! poly_len 4
//! rows     8
//! row * rows: pre u32 | post u32 | parent u32 | poly[poly_len]
//! checksum 8  FNV-1a over everything before it
//! ```
//!
//! Loading verifies the checksum, rebuilds the three indices and runs the
//! structural integrity check, so a truncated or bit-flipped file is
//! reported as [`StoreError::Persist`] instead of corrupting queries.

use crate::table::{Loc, Row, StoreError, Table};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SSXDB\x01\0\0";

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises `table` to `path` atomically (write temp + rename).
pub fn save_table(table: &Table, path: &Path) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 12 + table.len() * (12 + table.poly_len()) + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(table.poly_len() as u32).to_le_bytes());
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for row in table.rows() {
        buf.extend_from_slice(&row.loc.pre.to_le_bytes());
        buf.extend_from_slice(&row.loc.post.to_le_bytes());
        buf.extend_from_slice(&row.loc.parent.to_le_bytes());
        buf.extend_from_slice(&row.poly);
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(&buf).map_err(io)?;
    f.sync_all().map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Loads a table previously written by [`save_table`], rebuilding indices
/// and verifying integrity.
pub fn load_table(path: &Path) -> Result<Table, StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut buf)
        .map_err(io)?;
    if buf.len() < MAGIC.len() + 12 + 8 {
        return Err(StoreError::Persist("file too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(StoreError::Persist("checksum mismatch".into()));
    }
    if &body[..8] != MAGIC {
        return Err(StoreError::Persist("bad magic".into()));
    }
    let poly_len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let rows = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
    let row_size = 12 + poly_len;
    let expected = 20 + rows * row_size;
    if body.len() != expected {
        return Err(StoreError::Persist(format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    let mut table = Table::new(poly_len);
    for i in 0..rows {
        let off = 20 + i * row_size;
        let pre = u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
        let post = u32::from_le_bytes(body[off + 4..off + 8].try_into().unwrap());
        let parent = u32::from_le_bytes(body[off + 8..off + 12].try_into().unwrap());
        let poly = body[off + 12..off + row_size].to_vec().into_boxed_slice();
        table
            .insert(Row {
                loc: Loc { pre, post, parent },
                poly,
            })
            .map_err(|e| StoreError::Persist(format!("row {i}: {e}")))?;
    }
    table.check_integrity()?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(3);
        for (pre, post, parent) in [(1u32, 3u32, 0u32), (2, 1, 1), (3, 2, 1)] {
            t.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![pre as u8, 0xaa, 0xbb].into_boxed_slice(),
            })
            .unwrap();
        }
        t
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssx_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let path = tmp("round_trip.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.poly_len(), t.poly_len());
        for row in t.rows() {
            assert_eq!(back.by_pre(row.loc.pre).unwrap(), row);
        }
        // Indices work after reload.
        assert_eq!(back.children_of(1).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let path = tmp("truncated.ssxdb");
        save_table(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected() {
        let t = sample();
        let path = tmp("bitflip.ssxdb");
        save_table(&t, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let path = tmp("badmagic.ssxdb");
        // Valid checksum over garbage body.
        let mut buf = b"NOTADB\0\0".to_vec();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let sum = super::fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        let err = load_table(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("magic")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_error() {
        assert!(matches!(
            load_table(Path::new("/nonexistent/nope.ssxdb")).unwrap_err(),
            StoreError::Persist(_)
        ));
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(7);
        let path = tmp("empty.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.poly_len(), 7);
        std::fs::remove_file(&path).ok();
    }
}
