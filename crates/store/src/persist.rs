//! Checksummed single-file persistence for [`Table`], plus the per-party
//! fleet file that stores one party's data + MAC share tables together.
//!
//! Single-table layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"SSXDB\x01\0\0"
//! poly_len 4
//! rows     8
//! row * rows: pre u32 | post u32 | parent u32 | poly[poly_len]
//! checksum 8  FNV-1a over everything before it
//! ```
//!
//! Per-party fleet layout:
//!
//! ```text
//! magic     8  b"SSXFL\x01\0\0"
//! party     4  (1-based Shamir x-coordinate)
//! servers   4  (fleet size n)
//! threshold 4  (reconstruction threshold t)
//! poly_len  4
//! data_rows 8
//! mac_rows  8
//! data rows … mac rows … (same row format as above)
//! checksum  8  FNV-1a over everything before it
//! ```
//!
//! Loading verifies the checksum, rebuilds the three indices and runs the
//! structural integrity check, so a truncated or bit-flipped file is
//! reported as [`StoreError::Persist`] instead of corrupting queries. A
//! party file holds only Shamir shares: no single file (nor any `t − 1`
//! of them) reconstructs the encoded document.
//!
//! The write plane adds a **write-ahead log** next to the snapshot:
//!
//! ```text
//! wal header: magic 8 b"SSXWL\x01\0\0" | poly_len u32
//! record:     len u32 | kind u8 | payload[len − 1] | checksum u64
//! kind 1 insert: rows u32, then per row pre/post/parent u32 + poly
//! kind 2 remove: pres u32 count, then pre u32 each
//! ```
//!
//! `len` counts kind + payload; the FNV-1a checksum covers the length,
//! kind and payload, so a torn tail and a bit-flipped record are both
//! detected. One record = one whole-document mutation, so replaying up to
//! the last complete record always lands on a structurally consistent
//! forest. Replay is idempotent (duplicate inserts and already-gone
//! removes are skipped), and a torn tail is truncated away so later
//! appends start on a clean record boundary.

use crate::table::{Loc, Row, StoreError, Table};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SSXDB\x01\0\0";
const FLEET_MAGIC: &[u8; 8] = b"SSXFL\x01\0\0";
const WAL_MAGIC: &[u8; 8] = b"SSXWL\x01\0\0";
/// WAL header length: magic + poly_len.
const WAL_HDR: usize = 12;
/// WAL record kinds.
const WAL_INSERT: u8 = 1;
const WAL_REMOVE: u8 = 2;

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the row payloads of `table` to `buf` (shared row format).
fn write_rows(buf: &mut Vec<u8>, table: &Table) {
    for row in table.rows() {
        buf.extend_from_slice(&row.loc.pre.to_le_bytes());
        buf.extend_from_slice(&row.loc.post.to_le_bytes());
        buf.extend_from_slice(&row.loc.parent.to_le_bytes());
        buf.extend_from_slice(&row.poly);
    }
}

/// Parses `rows` rows of `poly_len`-byte polynomials starting at
/// `body[off..]` into a fresh, integrity-checked [`Table`].
fn read_rows(body: &[u8], off: usize, rows: usize, poly_len: usize) -> Result<Table, StoreError> {
    let row_size = 12 + poly_len;
    let mut table = Table::new(poly_len);
    for i in 0..rows {
        let at = off + i * row_size;
        let pre = u32::from_le_bytes(body[at..at + 4].try_into().unwrap());
        let post = u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap());
        let parent = u32::from_le_bytes(body[at + 8..at + 12].try_into().unwrap());
        let poly = body[at + 12..at + row_size].to_vec().into_boxed_slice();
        table
            .insert(Row {
                loc: Loc { pre, post, parent },
                poly,
            })
            .map_err(|e| StoreError::Persist(format!("row {i}: {e}")))?;
    }
    table.check_integrity()?;
    Ok(table)
}

/// Writes `buf` to `path` atomically (write temp + rename).
fn write_atomic(buf: &[u8], path: &Path) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(buf).map_err(io)?;
    f.sync_all().map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Serialises `table` to `path` atomically (write temp + rename).
pub fn save_table(table: &Table, path: &Path) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 12 + table.len() * (12 + table.poly_len()) + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(table.poly_len() as u32).to_le_bytes());
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    write_rows(&mut buf, table);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    write_atomic(&buf, path)
}

/// Loads a table previously written by [`save_table`], rebuilding indices
/// and verifying integrity.
pub fn load_table(path: &Path) -> Result<Table, StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut buf)
        .map_err(io)?;
    if buf.len() < MAGIC.len() + 12 + 8 {
        return Err(StoreError::Persist("file too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(StoreError::Persist("checksum mismatch".into()));
    }
    if &body[..8] != MAGIC {
        return Err(StoreError::Persist("bad magic".into()));
    }
    let poly_len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let rows = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
    let row_size = 12 + poly_len;
    let expected = 20 + rows * row_size;
    if body.len() != expected {
        return Err(StoreError::Persist(format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    read_rows(body, 20, rows, poly_len)
}

/// An append-only write-ahead log of whole-document mutations. Every
/// mutation is appended (and by default fsynced) *before* it is applied to
/// the in-memory table, so a crash at any point recovers by replaying the
/// log over the last snapshot.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    poly_len: usize,
    sync: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path` for `poly_len`-byte rows. An
    /// existing log must carry the same `poly_len` in its header.
    pub fn open(path: &Path, poly_len: usize) -> Result<Wal, StoreError> {
        let io = |e: std::io::Error| StoreError::Persist(e.to_string());
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        if len == 0 {
            let mut hdr = Vec::with_capacity(WAL_HDR);
            hdr.extend_from_slice(WAL_MAGIC);
            hdr.extend_from_slice(&(poly_len as u32).to_le_bytes());
            file.write_all(&hdr).map_err(io)?;
            file.sync_data().map_err(io)?;
        } else {
            if len < WAL_HDR as u64 {
                return Err(StoreError::Persist("wal shorter than its header".into()));
            }
            let mut hdr = [0u8; WAL_HDR];
            file.seek(std::io::SeekFrom::Start(0)).map_err(io)?;
            file.read_exact(&mut hdr).map_err(io)?;
            if &hdr[..8] != WAL_MAGIC {
                return Err(StoreError::Persist("bad wal magic".into()));
            }
            let stored = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
            if stored != poly_len {
                return Err(StoreError::Persist(format!(
                    "wal stores {stored}-byte rows, table stores {poly_len}"
                )));
            }
            file.seek(std::io::SeekFrom::End(0)).map_err(io)?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            poly_len,
            sync: true,
        })
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    /// Whether each append fsyncs before returning (default true). Turning
    /// it off trades the durability of the most recent mutations for
    /// throughput; the record framing stays crash-safe either way.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let io = |e: std::io::Error| StoreError::Persist(e.to_string());
        let len = wire_u32(1 + payload.len() as u64)?;
        let mut rec = Vec::with_capacity(4 + 1 + payload.len() + 8);
        rec.extend_from_slice(&len.to_le_bytes());
        rec.push(kind);
        rec.extend_from_slice(payload);
        let sum = fnv1a(&rec);
        rec.extend_from_slice(&sum.to_le_bytes());
        self.file.write_all(&rec).map_err(io)?;
        if self.sync {
            self.file.sync_data().map_err(io)?;
        }
        Ok(())
    }

    /// Logs the insertion of one whole document block (`rows` must be the
    /// complete set of rows of one document, so replay of the record is an
    /// all-or-nothing document insert).
    pub fn append_insert(&mut self, rows: &[Row]) -> Result<(), StoreError> {
        let count = wire_u32(rows.len() as u64)?;
        let mut payload = Vec::with_capacity(4 + rows.len() * (12 + self.poly_len));
        payload.extend_from_slice(&count.to_le_bytes());
        for row in rows {
            if row.poly.len() != self.poly_len {
                return Err(StoreError::Persist(format!(
                    "wal row poly {} bytes, log stores {}",
                    row.poly.len(),
                    self.poly_len
                )));
            }
            payload.extend_from_slice(&row.loc.pre.to_le_bytes());
            payload.extend_from_slice(&row.loc.post.to_le_bytes());
            payload.extend_from_slice(&row.loc.parent.to_le_bytes());
            payload.extend_from_slice(&row.poly);
        }
        self.append_record(WAL_INSERT, &payload)
    }

    /// Logs the removal of one whole document block by its `pre` numbers.
    pub fn append_remove(&mut self, pres: &[u32]) -> Result<(), StoreError> {
        let count = wire_u32(pres.len() as u64)?;
        let mut payload = Vec::with_capacity(4 + pres.len() * 4);
        payload.extend_from_slice(&count.to_le_bytes());
        for &pre in pres {
            payload.extend_from_slice(&pre.to_le_bytes());
        }
        self.append_record(WAL_REMOVE, &payload)
    }

    /// Drops every record (keeping the header) — called right after the
    /// table is snapshotted, so the snapshot + empty log equal the old
    /// snapshot + full log.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        let io = |e: std::io::Error| StoreError::Persist(e.to_string());
        self.file.set_len(WAL_HDR as u64).map_err(io)?;
        self.file.seek(std::io::SeekFrom::End(0)).map_err(io)?;
        self.file.sync_data().map_err(io)?;
        Ok(())
    }
}

/// Validates a record length or row count against the 4-byte wire prefix
/// *before* any bytes hit the file: a value past `u32::MAX` used to wrap
/// under `as u32` and write a record whose declared length disagreed with
/// its body — silent log corruption surfacing only at the next replay.
fn wire_u32(len: u64) -> Result<u32, StoreError> {
    u32::try_from(len).map_err(|_| StoreError::RecordTooLarge { len })
}

/// What [`replay_wal`] found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Complete, checksum-valid records applied.
    pub records: usize,
    /// Rows inserted into the table.
    pub rows_inserted: usize,
    /// Rows removed from the table.
    pub rows_removed: usize,
    /// Rows skipped because the table already reflected them (idempotent
    /// re-replay after a crash between apply and truncate).
    pub duplicates_skipped: usize,
    /// Bytes of torn tail / corrupt trailing record discarded.
    pub torn_bytes: usize,
}

/// Replays the log at `path` onto `table`, stopping at (and truncating
/// away) the first incomplete or checksum-invalid record. Missing file =
/// nothing to replay. The table is integrity-checked after replay.
pub fn replay_wal(path: &Path, table: &mut Table) -> Result<WalReplay, StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut replay = WalReplay::default();
    let buf = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(io(e)),
    };
    if buf.len() < WAL_HDR {
        return Err(StoreError::Persist("wal shorter than its header".into()));
    }
    if &buf[..8] != WAL_MAGIC {
        return Err(StoreError::Persist("bad wal magic".into()));
    }
    let poly_len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    if poly_len != table.poly_len() {
        return Err(StoreError::Persist(format!(
            "wal stores {poly_len}-byte rows, table stores {}",
            table.poly_len()
        )));
    }
    let mut at = WAL_HDR;
    let valid_end = loop {
        if at == buf.len() {
            break at; // clean end
        }
        if buf.len() - at < 4 {
            break at; // torn length prefix
        }
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        if len == 0 || buf.len() - at < 4 + len + 8 {
            break at; // torn record
        }
        let framed = &buf[at..at + 4 + len];
        let stored_sum =
            u64::from_le_bytes(buf[at + 4 + len..at + 4 + len + 8].try_into().unwrap());
        if fnv1a(framed) != stored_sum {
            break at; // bit flip anywhere in the record
        }
        let kind = framed[4];
        let payload = &framed[5..];
        match kind {
            WAL_INSERT => {
                if payload.len() < 4 {
                    break at;
                }
                let rows = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
                let row_size = 12 + poly_len;
                if payload.len() != 4 + rows * row_size {
                    break at;
                }
                for i in 0..rows {
                    let p = 4 + i * row_size;
                    let pre = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap());
                    let post = u32::from_le_bytes(payload[p + 4..p + 8].try_into().unwrap());
                    let parent = u32::from_le_bytes(payload[p + 8..p + 12].try_into().unwrap());
                    if table.by_pre(pre).is_some() {
                        replay.duplicates_skipped += 1;
                        continue;
                    }
                    table
                        .insert(Row {
                            loc: Loc { pre, post, parent },
                            poly: payload[p + 12..p + row_size].to_vec().into_boxed_slice(),
                        })
                        .map_err(|e| StoreError::Persist(format!("wal replay: {e}")))?;
                    replay.rows_inserted += 1;
                }
            }
            WAL_REMOVE => {
                if payload.len() < 4 {
                    break at;
                }
                let pres = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
                if payload.len() != 4 + pres * 4 {
                    break at;
                }
                for i in 0..pres {
                    let p = 4 + i * 4;
                    let pre = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap());
                    if table.remove(pre).is_ok() {
                        replay.rows_removed += 1;
                    } else {
                        replay.duplicates_skipped += 1;
                    }
                }
            }
            _ => break at, // unknown kind: treat as corruption boundary
        }
        replay.records += 1;
        at += 4 + len + 8;
    };
    if valid_end < buf.len() {
        replay.torn_bytes = buf.len() - valid_end;
        // Drop the torn tail so the next append starts on a record boundary.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io)?;
        f.set_len(valid_end as u64).map_err(io)?;
        f.sync_data().map_err(io)?;
    }
    table.check_integrity()?;
    Ok(replay)
}

/// Loads the snapshot at `snapshot` and replays the log at `wal` over it —
/// the crash-recovery read path of the write plane.
pub fn load_table_with_wal(snapshot: &Path, wal: &Path) -> Result<(Table, WalReplay), StoreError> {
    let mut table = load_table(snapshot)?;
    let replay = replay_wal(wal, &mut table)?;
    Ok((table, replay))
}

/// Snapshots `table` to `snapshot` atomically and truncates `wal` — the
/// incremental-checkpoint step. Ordering matters: the snapshot hits disk
/// (temp + fsync + rename) before any record is dropped, so a crash
/// between the two steps merely replays records the snapshot already
/// contains, which replay skips idempotently.
pub fn checkpoint(table: &Table, snapshot: &Path, wal: &mut Wal) -> Result<(), StoreError> {
    save_table(table, snapshot)?;
    wal.truncate()
}

/// Identity of one fleet party file: which party, out of what deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartyHeader {
    /// 1-based party id (the Shamir x-coordinate).
    pub party: u32,
    /// Fleet size `n`.
    pub servers: u32,
    /// Reconstruction threshold `t`.
    pub threshold: u32,
}

/// Serialises one party's `data` + `mac` share tables to `path` atomically.
/// The file carries the deployment shape so `serve --party i` can refuse a
/// store from a different fleet.
pub fn save_party(
    header: PartyHeader,
    data: &Table,
    mac: &Table,
    path: &Path,
) -> Result<(), StoreError> {
    if data.poly_len() != mac.poly_len() {
        return Err(StoreError::Persist(format!(
            "data poly_len {} != mac poly_len {}",
            data.poly_len(),
            mac.poly_len()
        )));
    }
    let row_size = 12 + data.poly_len();
    let mut buf =
        Vec::with_capacity(FLEET_MAGIC.len() + 32 + (data.len() + mac.len()) * row_size + 8);
    buf.extend_from_slice(FLEET_MAGIC);
    buf.extend_from_slice(&header.party.to_le_bytes());
    buf.extend_from_slice(&header.servers.to_le_bytes());
    buf.extend_from_slice(&header.threshold.to_le_bytes());
    buf.extend_from_slice(&(data.poly_len() as u32).to_le_bytes());
    buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(mac.len() as u64).to_le_bytes());
    write_rows(&mut buf, data);
    write_rows(&mut buf, mac);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    write_atomic(&buf, path)
}

/// Loads a party file previously written by [`save_party`], verifying the
/// checksum and both tables' structural integrity.
pub fn load_party(path: &Path) -> Result<(PartyHeader, Table, Table), StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut buf)
        .map_err(io)?;
    const HDR: usize = 8 + 12 + 4 + 16; // magic + party/servers/threshold + poly_len + two row counts
    if buf.len() < HDR + 8 {
        return Err(StoreError::Persist("file too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(StoreError::Persist("checksum mismatch".into()));
    }
    if &body[..8] != FLEET_MAGIC {
        return Err(StoreError::Persist(
            "bad magic (not a fleet party file)".into(),
        ));
    }
    let u32_at = |off: usize| u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
    let header = PartyHeader {
        party: u32_at(8),
        servers: u32_at(12),
        threshold: u32_at(16),
    };
    if header.party == 0
        || header.servers == 0
        || header.party > header.servers
        || header.threshold == 0
        || header.threshold > header.servers
    {
        return Err(StoreError::Persist(format!(
            "inconsistent fleet header: party {} of {}, threshold {}",
            header.party, header.servers, header.threshold
        )));
    }
    let poly_len = u32_at(20) as usize;
    let data_rows = u64::from_le_bytes(body[24..32].try_into().unwrap()) as usize;
    let mac_rows = u64::from_le_bytes(body[32..40].try_into().unwrap()) as usize;
    let row_size = 12 + poly_len;
    let expected = HDR + (data_rows + mac_rows) * row_size;
    if body.len() != expected {
        return Err(StoreError::Persist(format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    let data = read_rows(body, HDR, data_rows, poly_len)?;
    let mac = read_rows(body, HDR + data_rows * row_size, mac_rows, poly_len)?;
    Ok((header, data, mac))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(3);
        for (pre, post, parent) in [(1u32, 3u32, 0u32), (2, 1, 1), (3, 2, 1)] {
            t.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![pre as u8, 0xaa, 0xbb].into_boxed_slice(),
            })
            .unwrap();
        }
        t
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssx_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// The length/count prefixes of WAL records are 4 bytes on the wire: a
    /// value past `u32::MAX` must surface as a typed error *before* any
    /// bytes are written, never wrap. Exercised at the boundary with mocked
    /// lengths — allocating a real 4 GiB payload would prove nothing more.
    #[test]
    fn oversized_record_lengths_are_typed_errors_not_wraps() {
        assert_eq!(wire_u32(0).unwrap(), 0);
        assert_eq!(wire_u32(u32::MAX as u64).unwrap(), u32::MAX);
        for over in [u32::MAX as u64 + 1, u64::MAX] {
            match wire_u32(over).unwrap_err() {
                StoreError::RecordTooLarge { len } => assert_eq!(len, over),
                other => panic!("expected RecordTooLarge, got {other:?}"),
            }
        }
        // `append_record` adds the 1-byte kind before the cast: a payload of
        // exactly `u32::MAX` bytes is itself one byte too long.
        assert!(matches!(
            wire_u32(1 + u32::MAX as u64),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let path = tmp("round_trip.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.poly_len(), t.poly_len());
        for row in t.rows() {
            assert_eq!(back.by_pre(row.loc.pre).unwrap(), row);
        }
        // Indices work after reload.
        assert_eq!(back.children_of(1).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let path = tmp("truncated.ssxdb");
        save_table(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected() {
        let t = sample();
        let path = tmp("bitflip.ssxdb");
        save_table(&t, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let path = tmp("badmagic.ssxdb");
        // Valid checksum over garbage body.
        let mut buf = b"NOTADB\0\0".to_vec();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let sum = super::fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        let err = load_table(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("magic")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_error() {
        assert!(matches!(
            load_table(Path::new("/nonexistent/nope.ssxdb")).unwrap_err(),
            StoreError::Persist(_)
        ));
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(7);
        let path = tmp("empty.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.poly_len(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn party_round_trip() {
        let data = sample();
        let mac = sample();
        let hdr = PartyHeader {
            party: 2,
            servers: 3,
            threshold: 2,
        };
        let path = tmp("party.ssxfleet");
        save_party(hdr, &data, &mac, &path).unwrap();
        let (back_hdr, back_data, back_mac) = load_party(&path).unwrap();
        assert_eq!(back_hdr, hdr);
        for row in data.rows() {
            assert_eq!(back_data.by_pre(row.loc.pre).unwrap(), row);
            assert_eq!(back_mac.by_pre(row.loc.pre).unwrap(), row);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn party_file_rejects_table_magic_and_vice_versa() {
        let t = sample();
        let table_path = tmp("plain_for_party.ssxdb");
        save_table(&t, &table_path).unwrap();
        let err = load_party(&table_path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("magic")),
            "{err}"
        );
        let party_path = tmp("party_for_plain.ssxfleet");
        save_party(
            PartyHeader {
                party: 1,
                servers: 1,
                threshold: 1,
            },
            &t,
            &t,
            &party_path,
        )
        .unwrap();
        assert!(load_table(&party_path).is_err());
        std::fs::remove_file(&table_path).ok();
        std::fs::remove_file(&party_path).ok();
    }

    #[test]
    fn party_bit_flip_detected() {
        let t = sample();
        let path = tmp("party_bitflip.ssxfleet");
        save_party(
            PartyHeader {
                party: 1,
                servers: 3,
                threshold: 2,
            },
            &t,
            &t,
            &path,
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_party(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    /// Rows of a small second document block at `offset` (3 nodes).
    fn doc_rows(offset: u32) -> Vec<Row> {
        [(1u32, 3u32, 0u32), (2, 1, 1), (3, 2, 1)]
            .iter()
            .map(|&(pre, post, parent)| Row {
                loc: Loc {
                    pre: pre + offset,
                    post: post + offset,
                    parent: if parent == 0 { 0 } else { parent + offset },
                },
                poly: vec![(pre + offset) as u8, 0xcc, 0xdd].into_boxed_slice(),
            })
            .collect()
    }

    /// Reference rebuild: the snapshot table with `docs` inserted and
    /// `removed` document blocks removed, built directly (no WAL).
    fn reference(docs: &[Vec<Row>], removed: &[u32]) -> Table {
        let mut t = sample();
        for rows in docs {
            for row in rows {
                t.insert(row.clone()).unwrap();
            }
        }
        for &offset in removed {
            for pre in offset + 1..=offset + 3 {
                t.remove(pre).unwrap();
            }
        }
        t
    }

    #[test]
    fn wal_replay_recovers_mutations() {
        let snap = tmp("wal_basic.ssxdb");
        let wal_path = tmp("wal_basic.wal");
        std::fs::remove_file(&wal_path).ok();
        save_table(&sample(), &snap).unwrap();
        let mut wal = Wal::open(&wal_path, 3).unwrap();
        let doc_a = doc_rows(3);
        let doc_b = doc_rows(6);
        wal.append_insert(&doc_a).unwrap();
        wal.append_insert(&doc_b).unwrap();
        wal.append_remove(&[4, 5, 6]).unwrap(); // drop doc_a again
        drop(wal); // crash before any snapshot/truncate
        let (table, replay) = load_table_with_wal(&snap, &wal_path).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.rows_inserted, 6);
        assert_eq!(replay.rows_removed, 3);
        assert_eq!(replay.torn_bytes, 0);
        let want = reference(&[doc_rows(3), doc_rows(6)], &[3]);
        assert_eq!(table.rows().len(), want.rows().len());
        for row in want.rows() {
            assert_eq!(table.by_pre(row.loc.pre), Some(row), "pre {}", row.loc.pre);
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn wal_truncated_tail_recovers_to_last_complete_record() {
        let snap = tmp("wal_torn.ssxdb");
        let wal_path = tmp("wal_torn.wal");
        std::fs::remove_file(&wal_path).ok();
        save_table(&sample(), &snap).unwrap();
        let mut wal = Wal::open(&wal_path, 3).unwrap();
        wal.append_insert(&doc_rows(3)).unwrap();
        let complete_len = wal.len_bytes();
        wal.append_insert(&doc_rows(6)).unwrap();
        drop(wal);
        // Tear the tail mid-record (kill -9 between write and sync).
        let bytes = std::fs::read(&wal_path).unwrap();
        for torn_at in [complete_len + 2, bytes.len() as u64 - 3] {
            std::fs::write(&wal_path, &bytes[..torn_at as usize]).unwrap();
            let (table, replay) = load_table_with_wal(&snap, &wal_path).unwrap();
            assert_eq!(replay.records, 1, "torn_at {torn_at}");
            assert!(replay.torn_bytes > 0);
            // Bit-identical to the reference rebuild of the surviving set.
            let want = reference(&[doc_rows(3)], &[]);
            assert_eq!(table.rows().len(), want.rows().len());
            for row in want.rows() {
                assert_eq!(table.by_pre(row.loc.pre), Some(row));
            }
            // Recovery truncated the torn tail: the file now ends exactly at
            // the last complete record and replays cleanly.
            assert_eq!(
                std::fs::metadata(&wal_path).unwrap().len(),
                complete_len,
                "torn_at {torn_at}"
            );
            let (_, again) = load_table_with_wal(&snap, &wal_path).unwrap();
            assert_eq!(again.torn_bytes, 0);
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn wal_bit_flip_drops_only_the_corrupt_suffix() {
        let snap = tmp("wal_flip.ssxdb");
        let wal_path = tmp("wal_flip.wal");
        std::fs::remove_file(&wal_path).ok();
        save_table(&sample(), &snap).unwrap();
        let mut wal = Wal::open(&wal_path, 3).unwrap();
        wal.append_insert(&doc_rows(3)).unwrap();
        let first_len = wal.len_bytes() as usize;
        wal.append_insert(&doc_rows(6)).unwrap();
        drop(wal);
        // Flip one bit inside the *second* record's payload.
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes[first_len + 9] ^= 0x10;
        std::fs::write(&wal_path, &bytes).unwrap();
        let (table, replay) = load_table_with_wal(&snap, &wal_path).unwrap();
        assert_eq!(replay.records, 1, "only the intact record replays");
        assert!(replay.torn_bytes > 0);
        let want = reference(&[doc_rows(3)], &[]);
        assert_eq!(table.rows().len(), want.rows().len());
        for row in want.rows() {
            assert_eq!(table.by_pre(row.loc.pre), Some(row));
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn wal_duplicate_replay_is_idempotent() {
        let snap = tmp("wal_dup.ssxdb");
        let wal_path = tmp("wal_dup.wal");
        std::fs::remove_file(&wal_path).ok();
        save_table(&sample(), &snap).unwrap();
        let mut wal = Wal::open(&wal_path, 3).unwrap();
        wal.append_insert(&doc_rows(3)).unwrap();
        wal.append_remove(&[1, 2, 3]).unwrap();
        drop(wal);
        // Crash between apply and truncate: the same log replays twice over
        // a table that already reflects it.
        let (mut table, first) = load_table_with_wal(&snap, &wal_path).unwrap();
        assert_eq!(first.duplicates_skipped, 0);
        let again = replay_wal(&wal_path, &mut table).unwrap();
        assert_eq!(again.records, 2);
        assert_eq!(again.rows_inserted, 0);
        assert_eq!(again.rows_removed, 0);
        assert_eq!(again.duplicates_skipped, 6);
        let want = reference(&[doc_rows(3)], &[0]);
        assert_eq!(table.rows().len(), want.rows().len());
        for row in want.rows() {
            assert_eq!(table.by_pre(row.loc.pre), Some(row));
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn wal_checkpoint_truncates_and_round_trips() {
        let snap = tmp("wal_ckpt.ssxdb");
        let wal_path = tmp("wal_ckpt.wal");
        std::fs::remove_file(&wal_path).ok();
        let mut table = sample();
        save_table(&table, &snap).unwrap();
        let mut wal = Wal::open(&wal_path, 3).unwrap();
        let doc = doc_rows(3);
        wal.append_insert(&doc).unwrap();
        for row in &doc {
            table.insert(row.clone()).unwrap();
        }
        checkpoint(&table, &snap, &mut wal).unwrap();
        assert_eq!(wal.len_bytes(), WAL_HDR as u64, "records dropped");
        // Post-checkpoint mutations land in the (now empty) log.
        wal.append_remove(&[4, 5, 6]).unwrap();
        for pre in [4u32, 5, 6] {
            table.remove(pre).unwrap();
        }
        drop(wal);
        let (back, replay) = load_table_with_wal(&snap, &wal_path).unwrap();
        assert_eq!(replay.records, 1);
        assert_eq!(back.rows().len(), table.rows().len());
        for row in table.rows() {
            assert_eq!(back.by_pre(row.loc.pre), Some(row));
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn wal_header_mismatches_rejected() {
        let wal_path = tmp("wal_hdr.wal");
        std::fs::remove_file(&wal_path).ok();
        let wal = Wal::open(&wal_path, 3).unwrap();
        drop(wal);
        // Reopening with a different poly_len refuses.
        let err = Wal::open(&wal_path, 5).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("3-byte rows")),
            "{err}"
        );
        // Replaying into a mismatched table refuses.
        let mut t = Table::new(5);
        assert!(replay_wal(&wal_path, &mut t).is_err());
        // A missing log is not an error: nothing to replay.
        let missing = tmp("wal_never_existed.wal");
        std::fs::remove_file(&missing).ok();
        let mut t3 = Table::new(3);
        assert_eq!(replay_wal(&missing, &mut t3).unwrap(), WalReplay::default());
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn party_header_consistency_enforced() {
        let t = sample();
        let path = tmp("party_badhdr.ssxfleet");
        // party id outside the fleet: save permits it (caller bug), load rejects.
        save_party(
            PartyHeader {
                party: 5,
                servers: 3,
                threshold: 2,
            },
            &t,
            &t,
            &path,
        )
        .unwrap();
        let err = load_party(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("inconsistent")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
