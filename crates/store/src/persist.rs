//! Checksummed single-file persistence for [`Table`], plus the per-party
//! fleet file that stores one party's data + MAC share tables together.
//!
//! Single-table layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"SSXDB\x01\0\0"
//! poly_len 4
//! rows     8
//! row * rows: pre u32 | post u32 | parent u32 | poly[poly_len]
//! checksum 8  FNV-1a over everything before it
//! ```
//!
//! Per-party fleet layout:
//!
//! ```text
//! magic     8  b"SSXFL\x01\0\0"
//! party     4  (1-based Shamir x-coordinate)
//! servers   4  (fleet size n)
//! threshold 4  (reconstruction threshold t)
//! poly_len  4
//! data_rows 8
//! mac_rows  8
//! data rows … mac rows … (same row format as above)
//! checksum  8  FNV-1a over everything before it
//! ```
//!
//! Loading verifies the checksum, rebuilds the three indices and runs the
//! structural integrity check, so a truncated or bit-flipped file is
//! reported as [`StoreError::Persist`] instead of corrupting queries. A
//! party file holds only Shamir shares: no single file (nor any `t − 1`
//! of them) reconstructs the encoded document.

use crate::table::{Loc, Row, StoreError, Table};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SSXDB\x01\0\0";
const FLEET_MAGIC: &[u8; 8] = b"SSXFL\x01\0\0";

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the row payloads of `table` to `buf` (shared row format).
fn write_rows(buf: &mut Vec<u8>, table: &Table) {
    for row in table.rows() {
        buf.extend_from_slice(&row.loc.pre.to_le_bytes());
        buf.extend_from_slice(&row.loc.post.to_le_bytes());
        buf.extend_from_slice(&row.loc.parent.to_le_bytes());
        buf.extend_from_slice(&row.poly);
    }
}

/// Parses `rows` rows of `poly_len`-byte polynomials starting at
/// `body[off..]` into a fresh, integrity-checked [`Table`].
fn read_rows(body: &[u8], off: usize, rows: usize, poly_len: usize) -> Result<Table, StoreError> {
    let row_size = 12 + poly_len;
    let mut table = Table::new(poly_len);
    for i in 0..rows {
        let at = off + i * row_size;
        let pre = u32::from_le_bytes(body[at..at + 4].try_into().unwrap());
        let post = u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap());
        let parent = u32::from_le_bytes(body[at + 8..at + 12].try_into().unwrap());
        let poly = body[at + 12..at + row_size].to_vec().into_boxed_slice();
        table
            .insert(Row {
                loc: Loc { pre, post, parent },
                poly,
            })
            .map_err(|e| StoreError::Persist(format!("row {i}: {e}")))?;
    }
    table.check_integrity()?;
    Ok(table)
}

/// Writes `buf` to `path` atomically (write temp + rename).
fn write_atomic(buf: &[u8], path: &Path) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(buf).map_err(io)?;
    f.sync_all().map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Serialises `table` to `path` atomically (write temp + rename).
pub fn save_table(table: &Table, path: &Path) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 12 + table.len() * (12 + table.poly_len()) + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(table.poly_len() as u32).to_le_bytes());
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    write_rows(&mut buf, table);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    write_atomic(&buf, path)
}

/// Loads a table previously written by [`save_table`], rebuilding indices
/// and verifying integrity.
pub fn load_table(path: &Path) -> Result<Table, StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut buf)
        .map_err(io)?;
    if buf.len() < MAGIC.len() + 12 + 8 {
        return Err(StoreError::Persist("file too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(StoreError::Persist("checksum mismatch".into()));
    }
    if &body[..8] != MAGIC {
        return Err(StoreError::Persist("bad magic".into()));
    }
    let poly_len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let rows = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
    let row_size = 12 + poly_len;
    let expected = 20 + rows * row_size;
    if body.len() != expected {
        return Err(StoreError::Persist(format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    read_rows(body, 20, rows, poly_len)
}

/// Identity of one fleet party file: which party, out of what deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartyHeader {
    /// 1-based party id (the Shamir x-coordinate).
    pub party: u32,
    /// Fleet size `n`.
    pub servers: u32,
    /// Reconstruction threshold `t`.
    pub threshold: u32,
}

/// Serialises one party's `data` + `mac` share tables to `path` atomically.
/// The file carries the deployment shape so `serve --party i` can refuse a
/// store from a different fleet.
pub fn save_party(
    header: PartyHeader,
    data: &Table,
    mac: &Table,
    path: &Path,
) -> Result<(), StoreError> {
    if data.poly_len() != mac.poly_len() {
        return Err(StoreError::Persist(format!(
            "data poly_len {} != mac poly_len {}",
            data.poly_len(),
            mac.poly_len()
        )));
    }
    let row_size = 12 + data.poly_len();
    let mut buf =
        Vec::with_capacity(FLEET_MAGIC.len() + 32 + (data.len() + mac.len()) * row_size + 8);
    buf.extend_from_slice(FLEET_MAGIC);
    buf.extend_from_slice(&header.party.to_le_bytes());
    buf.extend_from_slice(&header.servers.to_le_bytes());
    buf.extend_from_slice(&header.threshold.to_le_bytes());
    buf.extend_from_slice(&(data.poly_len() as u32).to_le_bytes());
    buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(mac.len() as u64).to_le_bytes());
    write_rows(&mut buf, data);
    write_rows(&mut buf, mac);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    write_atomic(&buf, path)
}

/// Loads a party file previously written by [`save_party`], verifying the
/// checksum and both tables' structural integrity.
pub fn load_party(path: &Path) -> Result<(PartyHeader, Table, Table), StoreError> {
    let io = |e: std::io::Error| StoreError::Persist(e.to_string());
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut buf)
        .map_err(io)?;
    const HDR: usize = 8 + 12 + 4 + 16; // magic + party/servers/threshold + poly_len + two row counts
    if buf.len() < HDR + 8 {
        return Err(StoreError::Persist("file too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(StoreError::Persist("checksum mismatch".into()));
    }
    if &body[..8] != FLEET_MAGIC {
        return Err(StoreError::Persist(
            "bad magic (not a fleet party file)".into(),
        ));
    }
    let u32_at = |off: usize| u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
    let header = PartyHeader {
        party: u32_at(8),
        servers: u32_at(12),
        threshold: u32_at(16),
    };
    if header.party == 0
        || header.servers == 0
        || header.party > header.servers
        || header.threshold == 0
        || header.threshold > header.servers
    {
        return Err(StoreError::Persist(format!(
            "inconsistent fleet header: party {} of {}, threshold {}",
            header.party, header.servers, header.threshold
        )));
    }
    let poly_len = u32_at(20) as usize;
    let data_rows = u64::from_le_bytes(body[24..32].try_into().unwrap()) as usize;
    let mac_rows = u64::from_le_bytes(body[32..40].try_into().unwrap()) as usize;
    let row_size = 12 + poly_len;
    let expected = HDR + (data_rows + mac_rows) * row_size;
    if body.len() != expected {
        return Err(StoreError::Persist(format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    let data = read_rows(body, HDR, data_rows, poly_len)?;
    let mac = read_rows(body, HDR + data_rows * row_size, mac_rows, poly_len)?;
    Ok((header, data, mac))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(3);
        for (pre, post, parent) in [(1u32, 3u32, 0u32), (2, 1, 1), (3, 2, 1)] {
            t.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![pre as u8, 0xaa, 0xbb].into_boxed_slice(),
            })
            .unwrap();
        }
        t
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssx_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let path = tmp("round_trip.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.poly_len(), t.poly_len());
        for row in t.rows() {
            assert_eq!(back.by_pre(row.loc.pre).unwrap(), row);
        }
        // Indices work after reload.
        assert_eq!(back.children_of(1).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let path = tmp("truncated.ssxdb");
        save_table(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected() {
        let t = sample();
        let path = tmp("bitflip.ssxdb");
        save_table(&t, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_table(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let path = tmp("badmagic.ssxdb");
        // Valid checksum over garbage body.
        let mut buf = b"NOTADB\0\0".to_vec();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let sum = super::fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        let err = load_table(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("magic")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_error() {
        assert!(matches!(
            load_table(Path::new("/nonexistent/nope.ssxdb")).unwrap_err(),
            StoreError::Persist(_)
        ));
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(7);
        let path = tmp("empty.ssxdb");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.poly_len(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn party_round_trip() {
        let data = sample();
        let mac = sample();
        let hdr = PartyHeader {
            party: 2,
            servers: 3,
            threshold: 2,
        };
        let path = tmp("party.ssxfleet");
        save_party(hdr, &data, &mac, &path).unwrap();
        let (back_hdr, back_data, back_mac) = load_party(&path).unwrap();
        assert_eq!(back_hdr, hdr);
        for row in data.rows() {
            assert_eq!(back_data.by_pre(row.loc.pre).unwrap(), row);
            assert_eq!(back_mac.by_pre(row.loc.pre).unwrap(), row);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn party_file_rejects_table_magic_and_vice_versa() {
        let t = sample();
        let table_path = tmp("plain_for_party.ssxdb");
        save_table(&t, &table_path).unwrap();
        let err = load_party(&table_path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("magic")),
            "{err}"
        );
        let party_path = tmp("party_for_plain.ssxfleet");
        save_party(
            PartyHeader {
                party: 1,
                servers: 1,
                threshold: 1,
            },
            &t,
            &t,
            &party_path,
        )
        .unwrap();
        assert!(load_table(&party_path).is_err());
        std::fs::remove_file(&table_path).ok();
        std::fs::remove_file(&party_path).ok();
    }

    #[test]
    fn party_bit_flip_detected() {
        let t = sample();
        let path = tmp("party_bitflip.ssxfleet");
        save_party(
            PartyHeader {
                party: 1,
                servers: 3,
                threshold: 2,
            },
            &t,
            &t,
            &path,
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_party(&path).unwrap_err(),
            StoreError::Persist(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn party_header_consistency_enforced() {
        let t = sample();
        let path = tmp("party_badhdr.ssxfleet");
        // party id outside the fleet: save permits it (caller bug), load rejects.
        save_party(
            PartyHeader {
                party: 5,
                servers: 3,
                threshold: 2,
            },
            &t,
            &t,
            &path,
        )
        .unwrap();
        let err = load_party(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Persist(ref m) if m.contains("inconsistent")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
