#![warn(missing_docs)]

//! The server-side store: a B-tree-indexed relational table of encoded
//! nodes, standing in for the paper's MySQL backend (§5.1).
//!
//! > "The tree structure is stored by adding pre, post and parent values to
//! > each polynomial. … In order to speed up the search process the pre,
//! > post and parent fields are indexed by a B-tree."
//!
//! * [`BTree`] — a from-scratch in-memory B-tree (`u64 → u64`) with point
//!   lookups and ordered range scans; structural invariants are enforced in
//!   tests, and sizes are measurable for the Fig 4 index-size series.
//! * [`Table`] — rows of `(pre, post, parent, packed polynomial)` with three
//!   indices mirroring the paper's layout: `pre` (point access), `post`
//!   (interval checks) and `(parent, pre)` (children enumeration).
//!   Descendant enumeration exploits that descendants of `u` are exactly the
//!   rows with `pre > pre(u) ∧ post < post(u)`, contiguous in `pre` order.
//! * [`persist`] — a simple checksummed file format; loading rebuilds the
//!   indices (a documented deviation from MySQL, which persists B-trees;
//!   sizes are still reported for both data and indices).

pub mod btree;
pub mod persist;
pub mod table;

pub use btree::BTree;
pub use persist::{
    checkpoint, load_party, load_table, load_table_with_wal, replay_wal, save_party, save_table,
    PartyHeader, Wal, WalReplay,
};
pub use table::{Loc, Row, SizeReport, StoreError, Table, NUM_PLANE_BASE};
