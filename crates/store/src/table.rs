//! The encoded-node table: `(pre, post, parent, polynomial)` rows plus the
//! three B-tree indices of the paper.

use crate::btree::BTree;
use std::fmt;

/// First `pre` of the auxiliary numeric plane. Rows at or above this
/// boundary carry per-element *numeric values* (base-2 digit shares for the
/// aggregation plane) rather than tag polynomials: an element `p` whose text
/// is an integer stores its value share at `pre = NUM_PLANE_BASE + p`.
/// Numeric rows are leaf-only and carry `parent = 0` with a pre/post
/// interval mirroring the element's, so [`Table::check_integrity`]'s nesting
/// scan sees them as disjoint single-node trees. Structural answers
/// (roots/children, [`Table::max_pre`]) mask the plane out; the ordinary
/// document plane must stay below the boundary.
pub const NUM_PLANE_BASE: u32 = 1 << 30;

/// A node location as the engines see it: the pre/post/parent triple. This
/// is all the *structural* information the server reveals per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Open-tag sequence number (1-based; the primary key).
    pub pre: u32,
    /// Close-tag sequence number.
    pub post: u32,
    /// `pre` of the parent; 0 for the root.
    pub parent: u32,
}

/// A stored row: location plus the packed server-share polynomial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Node location.
    pub loc: Loc,
    /// Packed polynomial (constant length per table).
    pub poly: Box<[u8]>,
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Row violated a structural constraint.
    BadRow(String),
    /// A queried `pre` does not exist.
    NoSuchNode(u32),
    /// Polynomial payload had the wrong length for this table.
    WrongPolyLen {
        /// Expected packed length.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// Persistence-layer failure (I/O or corruption).
    Persist(String),
    /// A WAL record's payload or row count exceeds what its 4-byte wire
    /// length prefix can carry — writing it would silently truncate the
    /// length and corrupt the log for every later replay.
    RecordTooLarge {
        /// The length that did not fit.
        len: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadRow(m) => write!(f, "bad row: {m}"),
            StoreError::NoSuchNode(pre) => write!(f, "no node with pre = {pre}"),
            StoreError::WrongPolyLen { expected, got } => {
                write!(f, "polynomial payload {got} bytes, table stores {expected}")
            }
            StoreError::Persist(m) => write!(f, "persistence error: {m}"),
            StoreError::RecordTooLarge { len } => {
                write!(f, "record of {len} bytes exceeds the 4-byte length prefix")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Byte-level size report backing the Fig 4 reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeReport {
    /// Total bytes of packed polynomials.
    pub poly_bytes: usize,
    /// Total bytes of pre/post/parent triples (12 per row).
    pub structure_bytes: usize,
    /// Estimated bytes of the three B-tree indices.
    pub index_bytes: usize,
    /// Number of rows.
    pub rows: usize,
}

impl SizeReport {
    /// Data bytes: polynomials + structure (the paper's "output size").
    pub fn data_bytes(&self) -> usize {
        self.poly_bytes + self.structure_bytes
    }

    /// Fraction of the output taken by pre/post/parent (paper: ≈ 17%).
    pub fn structure_fraction(&self) -> f64 {
        if self.data_bytes() == 0 {
            return 0.0;
        }
        self.structure_bytes as f64 / self.data_bytes() as f64
    }
}

/// The server table. Insertion order is free, but the usual producer (the
/// encoder) emits rows in `post` order; all indices accept any order.
#[derive(Clone, Debug)]
pub struct Table {
    rows: Vec<Row>,
    poly_len: usize,
    /// pre → row position.
    pre_idx: BTree,
    /// post → row position.
    post_idx: BTree,
    /// (parent << 32 | pre) → row position; enables ordered children scans.
    parent_idx: BTree,
    /// Largest `post` inserted so far; a new `post` above it is fresh
    /// without probing the index. The usual producer (the encoder) emits
    /// `post = 1, 2, 3, …`, so its duplicate probe is one comparison.
    /// Removal leaves it as a stale-high hint (still sound for the probe).
    max_post: u64,
    /// Largest `pre` ever inserted; like `max_post`, a stale-high hint after
    /// removals. The write plane allocates fresh document offsets above it.
    max_pre: u64,
}

impl Table {
    /// Creates an empty table storing `poly_len`-byte packed polynomials.
    pub fn new(poly_len: usize) -> Self {
        Table {
            rows: Vec::new(),
            poly_len,
            pre_idx: BTree::new(),
            post_idx: BTree::new(),
            parent_idx: BTree::new(),
            max_post: 0,
            max_pre: 0,
        }
    }

    /// Largest *document-plane* `pre` ever inserted (a stale-high hint after
    /// removals — never reused, which is exactly what offset allocation
    /// wants). Numeric-plane rows (`pre >= NUM_PLANE_BASE`) are excluded:
    /// their ids are derived from element `pre`s, so counting them here
    /// would wreck offset allocation the moment one lands.
    pub fn max_pre(&self) -> u32 {
        self.max_pre as u32
    }

    /// Largest `post` ever inserted (stale-high after removals).
    pub fn max_post(&self) -> u32 {
        self.max_post as u32
    }

    /// Packed polynomial length for this table.
    pub fn poly_len(&self) -> usize {
        self.poly_len
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row, enforcing uniqueness of `pre` and `post`, payload
    /// length, and basic sanity (`pre >= 1`, `parent < pre`).
    pub fn insert(&mut self, row: Row) -> Result<(), StoreError> {
        if row.poly.len() != self.poly_len {
            return Err(StoreError::WrongPolyLen {
                expected: self.poly_len,
                got: row.poly.len(),
            });
        }
        let Loc { pre, post, parent } = row.loc;
        if pre == 0 {
            return Err(StoreError::BadRow("pre must be >= 1".into()));
        }
        if parent >= pre {
            return Err(StoreError::BadRow(format!(
                "parent {parent} not before pre {pre}"
            )));
        }
        let pos = self.rows.len() as u64;
        // `post` is probed before any index mutates so a duplicate leaves
        // the table untouched; `pre` uniqueness rides on the combined
        // probe-and-insert descent, and the parent key embeds `pre` so its
        // uniqueness follows. Monotone producers skip the probe descent via
        // the `max_post` high-water mark.
        if post as u64 <= self.max_post && self.post_idx.contains(post as u64) {
            return Err(StoreError::BadRow(format!("duplicate post {post}")));
        }
        if !self.pre_idx.insert_new(pre as u64, pos) {
            return Err(StoreError::BadRow(format!("duplicate pre {pre}")));
        }
        let fresh_post = self.post_idx.insert_new(post as u64, pos);
        debug_assert!(fresh_post, "post checked above");
        let fresh_parent = self
            .parent_idx
            .insert_new(((parent as u64) << 32) | pre as u64, pos);
        debug_assert!(fresh_parent, "parent key embeds the unique pre");
        self.max_post = self.max_post.max(post as u64);
        if pre < NUM_PLANE_BASE {
            self.max_pre = self.max_pre.max(pre as u64);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Removes the row with `pre`, returning it. The last row is swapped
    /// into the vacated position and its three index entries re-pointed, so
    /// removal is O(log n) regardless of position. Removing an interior node
    /// while its descendants stay behind leaves those rows orphaned — the
    /// write plane always removes whole document blocks, and
    /// [`Table::check_integrity`] catches anything less.
    pub fn remove(&mut self, pre: u32) -> Result<Row, StoreError> {
        let pos = self
            .pre_idx
            .remove(pre as u64)
            .ok_or(StoreError::NoSuchNode(pre))? as usize;
        let loc = self.rows[pos].loc;
        self.post_idx.remove(loc.post as u64);
        self.parent_idx
            .remove(((loc.parent as u64) << 32) | pre as u64);
        let row = self.rows.swap_remove(pos);
        if pos < self.rows.len() {
            let moved = self.rows[pos].loc;
            self.pre_idx.insert(moved.pre as u64, pos as u64);
            self.post_idx.insert(moved.post as u64, pos as u64);
            self.parent_idx
                .insert(((moved.parent as u64) << 32) | moved.pre as u64, pos as u64);
        }
        Ok(row)
    }

    /// Row by `pre` (indexed point lookup).
    pub fn by_pre(&self, pre: u32) -> Option<&Row> {
        self.pre_idx
            .get(pre as u64)
            .map(|pos| &self.rows[pos as usize])
    }

    /// The first root row — "the node without a parent (parent = 0)", found
    /// through the parent index in logarithmic time (§5.3). A multi-document
    /// store is a forest; this returns the root with the smallest `pre`
    /// (document order), and [`Table::roots`] enumerates them all.
    pub fn root(&self) -> Option<&Row> {
        let (key, pos) = self.parent_idx.lower_bound(0)?;
        if key >> 32 != 0 {
            return None; // no parent-0 entry at all (cannot happen for trees)
        }
        Some(&self.rows[pos as usize])
    }

    /// All document roots (`parent = 0`) in document order — one ordered
    /// scan of the parent-0 prefix of the `(parent, pre)` index.
    pub fn roots(&self) -> Vec<Loc> {
        self.parent_idx
            .range(0, u32::MAX as u64)
            .map(|(_, pos)| self.rows[pos as usize].loc)
            .collect()
    }

    /// Children of the node with `pre = parent`, in document order — one
    /// ordered scan of the `(parent, pre)` index.
    pub fn children_of(&self, parent: u32) -> Vec<Loc> {
        let lo = (parent as u64) << 32;
        let hi = lo | u32::MAX as u64;
        self.parent_idx
            .range(lo, hi)
            .map(|(_, pos)| self.rows[pos as usize].loc)
            .collect()
    }

    /// Descendants of `loc` in document order. Exploits the interval
    /// property: they are exactly the rows with `pre > loc.pre` and
    /// `post < loc.post`, *contiguous* in `pre` order — a single range scan
    /// that stops at the first row with `post > loc.post`.
    pub fn descendants_of(&self, loc: Loc) -> Vec<Loc> {
        let mut out = Vec::new();
        for (_, pos) in self.pre_idx.range(loc.pre as u64 + 1, u64::MAX) {
            let row = &self.rows[pos as usize];
            if row.loc.post > loc.post {
                break;
            }
            out.push(row.loc);
        }
        out
    }

    /// Descendants via a full table scan (no index) — the baseline for the
    /// index ablation bench; returns the same set as
    /// [`Table::descendants_of`].
    pub fn descendants_of_scan(&self, loc: Loc) -> Vec<Loc> {
        let mut out: Vec<Loc> = self
            .rows
            .iter()
            .filter(|r| r.loc.pre > loc.pre && r.loc.post < loc.post)
            .map(|r| r.loc)
            .collect();
        out.sort_by_key(|l| l.pre);
        out
    }

    /// All locations in document (`pre`) order.
    pub fn all_locs(&self) -> Vec<Loc> {
        self.pre_idx
            .iter()
            .map(|(_, pos)| self.rows[pos as usize].loc)
            .collect()
    }

    /// Direct row access in insertion order (persistence).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consumes the table, yielding its rows in insertion order (used to
    /// repartition a table across shards without cloning the payloads).
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Byte-level size accounting for the Fig 4 series.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            poly_bytes: self.rows.len() * self.poly_len,
            structure_bytes: self.rows.len() * 12,
            index_bytes: self.pre_idx.byte_size()
                + self.post_idx.byte_size()
                + self.parent_idx.byte_size(),
            rows: self.rows.len(),
        }
    }

    /// Structural integrity check: the rows in `pre` order must form a
    /// forest of properly nested intervals (one tree per document) in which
    /// every row's `parent` is exactly its innermost enclosing node — the
    /// shape the single-range-scan [`Table::descendants_of`] relies on. A
    /// single-document table is the one-root special case. Used after
    /// loading from disk and after write-plane mutations.
    pub fn check_integrity(&self) -> Result<(), StoreError> {
        if self.rows.is_empty() {
            return Ok(());
        }
        let mut stack: Vec<Loc> = Vec::new();
        let mut roots = 0usize;
        for loc in self.all_locs() {
            // Close every open node whose interval ended before this row.
            while let Some(top) = stack.last() {
                if top.post < loc.post {
                    stack.pop();
                } else {
                    break;
                }
            }
            match stack.last() {
                None => {
                    if loc.parent != 0 {
                        return Err(StoreError::BadRow(format!(
                            "row pre={} claims parent {} but no node encloses it",
                            loc.pre, loc.parent
                        )));
                    }
                    roots += 1;
                }
                Some(top) => {
                    if loc.parent != top.pre {
                        return Err(StoreError::BadRow(format!(
                            "row pre={} has parent {} but its innermost enclosing node is {}",
                            loc.pre, loc.parent, top.pre
                        )));
                    }
                }
            }
            stack.push(loc);
        }
        debug_assert!(roots >= 1, "non-empty table always surfaces a root");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the table for this little tree (pre/post/parent as the paper
    /// numbers them):
    ///
    /// ```text
    /// a(1,4,0) { b(2,2,1) { c(3,1,2) }, d(4,3,1) }
    /// ```
    fn sample_table() -> Table {
        let mut t = Table::new(4);
        for (pre, post, parent) in [(1u32, 4u32, 0u32), (2, 2, 1), (3, 1, 2), (4, 3, 1)] {
            t.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![pre as u8; 4].into_boxed_slice(),
            })
            .unwrap();
        }
        t
    }

    #[test]
    fn point_lookups() {
        let t = sample_table();
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.by_pre(3).unwrap().loc,
            Loc {
                pre: 3,
                post: 1,
                parent: 2
            }
        );
        assert!(t.by_pre(99).is_none());
        assert_eq!(t.root().unwrap().loc.pre, 1);
    }

    #[test]
    fn children_in_document_order() {
        let t = sample_table();
        let kids = t.children_of(1);
        assert_eq!(kids.iter().map(|l| l.pre).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(t.children_of(3), vec![]);
    }

    #[test]
    fn descendants_interval_scan() {
        let t = sample_table();
        let root = t.root().unwrap().loc;
        let desc = t.descendants_of(root);
        assert_eq!(
            desc.iter().map(|l| l.pre).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        let b = t.by_pre(2).unwrap().loc;
        assert_eq!(
            t.descendants_of(b)
                .iter()
                .map(|l| l.pre)
                .collect::<Vec<_>>(),
            vec![3]
        );
        // Scan baseline agrees.
        assert_eq!(t.descendants_of(root), t.descendants_of_scan(root));
        assert_eq!(t.descendants_of(b), t.descendants_of_scan(b));
    }

    #[test]
    fn insert_validation() {
        let mut t = sample_table();
        let poly = vec![0u8; 4].into_boxed_slice();
        assert!(matches!(
            t.insert(Row {
                loc: Loc {
                    pre: 0,
                    post: 9,
                    parent: 0
                },
                poly: poly.clone()
            }),
            Err(StoreError::BadRow(_))
        ));
        assert!(matches!(
            t.insert(Row {
                loc: Loc {
                    pre: 2,
                    post: 9,
                    parent: 1
                },
                poly: poly.clone()
            }),
            Err(StoreError::BadRow(_)) // duplicate pre
        ));
        assert!(matches!(
            t.insert(Row {
                loc: Loc {
                    pre: 9,
                    post: 2,
                    parent: 1
                },
                poly: poly.clone()
            }),
            Err(StoreError::BadRow(_)) // duplicate post
        ));
        assert!(matches!(
            t.insert(Row {
                loc: Loc {
                    pre: 9,
                    post: 9,
                    parent: 9
                },
                poly: poly.clone()
            }),
            Err(StoreError::BadRow(_)) // parent not before pre
        ));
        assert!(matches!(
            t.insert(Row {
                loc: Loc {
                    pre: 9,
                    post: 9,
                    parent: 1
                },
                poly: vec![0; 3].into()
            }),
            Err(StoreError::WrongPolyLen {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn size_report_accounts_everything() {
        let t = sample_table();
        let r = t.size_report();
        assert_eq!(r.rows, 4);
        assert_eq!(r.poly_bytes, 16);
        assert_eq!(r.structure_bytes, 48);
        assert!(r.index_bytes > 0);
        assert_eq!(r.data_bytes(), 64);
        assert!((r.structure_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn integrity_checks() {
        let t = sample_table();
        t.check_integrity().unwrap();
        // A second root with its own disjoint block is a valid forest.
        let mut forest = sample_table();
        forest
            .insert(Row {
                loc: Loc {
                    pre: 9,
                    post: 9,
                    parent: 0,
                },
                poly: vec![0; 4].into_boxed_slice(),
            })
            .unwrap();
        forest.check_integrity().unwrap();
        assert_eq!(forest.roots().len(), 2);
        // A dangling parent breaks it.
        let mut bad = sample_table();
        bad.insert(Row {
            loc: Loc {
                pre: 9,
                post: 9,
                parent: 7,
            },
            poly: vec![0; 4].into_boxed_slice(),
        })
        .unwrap();
        assert!(bad.check_integrity().is_err());
        // A "root" nested inside another root's interval breaks it: the
        // descendants range scan for pre=1 would sweep it up.
        let mut bad2 = Table::new(1);
        for (pre, post, parent) in [(1u32, 3u32, 0u32), (2, 1, 1), (3, 2, 0)] {
            bad2.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![0].into_boxed_slice(),
            })
            .unwrap();
        }
        assert!(bad2.check_integrity().is_err());
        // A parent pointer that skips the innermost enclosing node breaks
        // it (children_of and the interval scan would disagree).
        let mut bad3 = Table::new(1);
        for (pre, post, parent) in [(1u32, 3u32, 0u32), (2, 2, 1), (3, 1, 1)] {
            bad3.insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![0].into_boxed_slice(),
            })
            .unwrap();
        }
        assert!(bad3.check_integrity().is_err());
    }

    #[test]
    fn remove_swaps_and_repoints_indices() {
        let mut t = sample_table();
        // Remove an interior-position row: the last row (pre=4) swaps into
        // its slot and every index must still resolve it.
        let gone = t.remove(2).unwrap();
        assert_eq!(gone.loc.pre, 2);
        assert_eq!(t.len(), 3);
        assert!(t.by_pre(2).is_none());
        assert_eq!(t.by_pre(4).unwrap().loc.post, 3);
        assert_eq!(
            t.children_of(1).iter().map(|l| l.pre).collect::<Vec<_>>(),
            vec![4]
        );
        assert!(matches!(t.remove(2), Err(StoreError::NoSuchNode(2))));
        // max_pre/max_post stay stale-high hints.
        assert_eq!(t.max_pre(), 4);
        assert_eq!(t.max_post(), 4);
        // Re-inserting the removed location is accepted again.
        t.insert(gone).unwrap();
        t.check_integrity().unwrap();
        assert_eq!(
            t.all_locs().iter().map(|l| l.pre).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
    }

    #[test]
    fn forest_blocks_scan_independently() {
        // Two documents at offsets 0 and 4 (the sample tree twice): every
        // per-document query must answer as if the other were absent.
        let mut t = Table::new(4);
        for offset in [0u32, 4] {
            for (pre, post, parent) in [(1u32, 4u32, 0u32), (2, 2, 1), (3, 1, 2), (4, 3, 1)] {
                t.insert(Row {
                    loc: Loc {
                        pre: pre + offset,
                        post: post + offset,
                        parent: if parent == 0 { 0 } else { parent + offset },
                    },
                    poly: vec![pre as u8; 4].into_boxed_slice(),
                })
                .unwrap();
            }
        }
        t.check_integrity().unwrap();
        assert_eq!(
            t.roots().iter().map(|l| l.pre).collect::<Vec<_>>(),
            vec![1, 5]
        );
        assert_eq!(t.root().unwrap().loc.pre, 1, "first root in pre order");
        for offset in [0u32, 4] {
            let root = t.by_pre(1 + offset).unwrap().loc;
            let desc: Vec<u32> = t.descendants_of(root).iter().map(|l| l.pre).collect();
            assert_eq!(desc, vec![2 + offset, 3 + offset, 4 + offset]);
            assert_eq!(t.descendants_of(root), t.descendants_of_scan(root));
        }
        // Delete the first document block; the second must be untouched.
        for pre in 1..=4u32 {
            t.remove(pre).unwrap();
        }
        t.check_integrity().unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.root().unwrap().loc.pre, 5);
        let root = t.by_pre(5).unwrap().loc;
        assert_eq!(
            t.descendants_of(root)
                .iter()
                .map(|l| l.pre)
                .collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::new(4);
        assert!(t.is_empty());
        assert!(t.root().is_none());
        assert_eq!(t.all_locs(), vec![]);
        t.check_integrity().unwrap();
        assert_eq!(t.size_report().data_bytes(), 0);
    }

    #[test]
    fn larger_tree_children_vs_descendants() {
        // A star: root with 100 children, each child with one grandchild.
        let mut t = Table::new(1);
        let n = 100u32;
        // pre numbers: root 1; child i -> 2i, grandchild -> 2i+1 (i from 1).
        // posts: grandchild closes first.
        t.insert(Row {
            loc: Loc {
                pre: 1,
                post: 2 * n + 1,
                parent: 0,
            },
            poly: vec![0].into(),
        })
        .unwrap();
        for i in 1..=n {
            t.insert(Row {
                loc: Loc {
                    pre: 2 * i,
                    post: 2 * i,
                    parent: 1,
                },
                poly: vec![0].into(),
            })
            .unwrap();
            t.insert(Row {
                loc: Loc {
                    pre: 2 * i + 1,
                    post: 2 * i - 1,
                    parent: 2 * i,
                },
                poly: vec![0].into(),
            })
            .unwrap();
        }
        t.check_integrity().unwrap();
        assert_eq!(t.children_of(1).len(), n as usize);
        let root = t.root().unwrap().loc;
        assert_eq!(t.descendants_of(root).len(), 2 * n as usize);
        assert_eq!(t.descendants_of(root), t.descendants_of_scan(root));
    }
}
