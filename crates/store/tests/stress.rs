//! Stress and scale tests for the storage layer.

use ssx_store::{BTree, Loc, Row, Table};

#[test]
fn btree_hundred_thousand_random_keys() {
    let mut tree = BTree::new();
    // Deterministic pseudo-random permutation via an LCG.
    let mut k = 1u64;
    let n = 100_000u64;
    for i in 0..n {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        tree.insert(k, i);
    }
    assert_eq!(
        tree.len() as u64,
        n,
        "no collisions expected from the LCG in 100k draws"
    );
    tree.check_invariants().unwrap();
    // Full iteration is sorted and complete.
    let mut prev = 0u64;
    let mut count = 0;
    for (key, _) in tree.iter() {
        assert!(count == 0 || key > prev);
        prev = key;
        count += 1;
    }
    assert_eq!(count, n as usize);
    // Tree height stays logarithmic: with t = 32, 100k keys fit in 4 levels,
    // so node count is comfortably below n / 16.
    assert!(tree.node_count() < (n as usize) / 16);
}

#[test]
fn deep_chain_descendants() {
    // A 20k-deep chain: descendants_of(root) scans the whole table, and the
    // interval property must hold at every level.
    let n = 20_000u32;
    let mut table = Table::new(1);
    for pre in 1..=n {
        table
            .insert(Row {
                loc: Loc {
                    pre,
                    post: n - pre + 1,
                    parent: pre.saturating_sub(1),
                },
                poly: vec![0u8].into_boxed_slice(),
            })
            .unwrap();
    }
    table.check_integrity().unwrap();
    let root = table.root().unwrap().loc;
    assert_eq!(table.descendants_of(root).len(), n as usize - 1);
    // A mid node sees exactly the nodes below it.
    let mid = table.by_pre(n / 2).unwrap().loc;
    assert_eq!(table.descendants_of(mid).len(), (n - n / 2) as usize);
    // Every node has at most one child in a chain.
    for pre in 1..n {
        assert_eq!(table.children_of(pre).len(), 1);
    }
    assert_eq!(table.children_of(n).len(), 0);
}

#[test]
fn wide_star_children() {
    // One root with 50k children: children_of must return them in order via
    // a single range scan of the (parent, pre) index.
    let n = 50_000u32;
    let mut table = Table::new(1);
    table
        .insert(Row {
            loc: Loc {
                pre: 1,
                post: n + 1,
                parent: 0,
            },
            poly: vec![0u8].into_boxed_slice(),
        })
        .unwrap();
    for i in 0..n {
        table
            .insert(Row {
                loc: Loc {
                    pre: 2 + i,
                    post: 1 + i,
                    parent: 1,
                },
                poly: vec![0u8].into_boxed_slice(),
            })
            .unwrap();
    }
    table.check_integrity().unwrap();
    let kids = table.children_of(1);
    assert_eq!(kids.len(), n as usize);
    assert!(
        kids.windows(2).all(|w| w[0].pre < w[1].pre),
        "document order"
    );
}

#[test]
fn interleaved_insertion_order() {
    // Rows may arrive in any order (the encoder emits post-order; loaders
    // emit file order); indices must not care.
    let rows = [(3u32, 1u32, 2u32), (1, 4, 0), (4, 3, 1), (2, 2, 1)];
    let mut table = Table::new(1);
    for (pre, post, parent) in rows {
        table
            .insert(Row {
                loc: Loc { pre, post, parent },
                poly: vec![0u8].into_boxed_slice(),
            })
            .unwrap();
    }
    table.check_integrity().unwrap();
    assert_eq!(table.root().unwrap().loc.pre, 1);
    assert_eq!(
        table
            .children_of(1)
            .iter()
            .map(|l| l.pre)
            .collect::<Vec<_>>(),
        vec![2, 4]
    );
    assert_eq!(
        table.all_locs().iter().map(|l| l.pre).collect::<Vec<_>>(),
        vec![1, 2, 3, 4]
    );
}

#[test]
fn persistence_scales() {
    let n = 10_000u32;
    let mut table = Table::new(8);
    for pre in 1..=n {
        table
            .insert(Row {
                loc: Loc {
                    pre,
                    post: n - pre + 1,
                    parent: pre.saturating_sub(1),
                },
                poly: vec![pre as u8; 8].into_boxed_slice(),
            })
            .unwrap();
    }
    let path = std::env::temp_dir().join("ssx_store_stress.ssxdb");
    ssx_store::save_table(&table, &path).unwrap();
    let back = ssx_store::load_table(&path).unwrap();
    assert_eq!(back.len(), n as usize);
    assert_eq!(back.by_pre(n).unwrap().poly, table.by_pre(n).unwrap().poly);
    std::fs::remove_file(&path).ok();
}
