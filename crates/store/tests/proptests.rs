//! Property tests: the B-tree against the standard-library model, and
//! table scans against brute force on random trees.

use proptest::prelude::*;
use ssx_store::{BTree, Loc, Row, Table};
use std::collections::BTreeMap;

proptest! {
    /// BTree behaves exactly like std::BTreeMap under random workloads.
    #[test]
    fn btree_model_equivalence(ops in proptest::collection::vec((any::<u16>(), any::<u64>()), 1..600)) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in ops {
            let k = k as u64;
            prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<(u64, u64)> = tree.iter().collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Mixed insert/remove workloads behave exactly like std::BTreeMap:
    /// every remove returns the model's answer, the structural invariants
    /// (minimum fill, uniform leaf depth, ordering) hold afterwards, and the
    /// surviving entries iterate identically. Keys are drawn from a small
    /// domain so removes hit often and force borrows/merges.
    #[test]
    fn btree_remove_model_equivalence(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>(), any::<u64>()), 1..800),
    ) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (is_remove, k, v) in ops {
            let k = k as u64;
            if is_remove {
                prop_assert_eq!(tree.remove(k), model.remove(&k));
            } else {
                prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<(u64, u64)> = tree.iter().collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Building up then tearing fully down in a random order leaves a clean
    /// single-leaf tree whose freed arena slots are reused on refill.
    #[test]
    fn btree_teardown_and_refill(
        keys in proptest::collection::btree_set(0u64..3000, 64..600),
        tear_seed in any::<u64>(),
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(k, !k);
        }
        let peak = tree.node_count();
        // Deterministic pseudo-random teardown order.
        let mut order: Vec<u64> = keys.iter().copied().collect();
        let mut x = tear_seed | 1;
        for i in (1..order.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for k in order {
            prop_assert_eq!(tree.remove(k), Some(!k));
        }
        prop_assert!(tree.is_empty());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        for &k in &keys {
            tree.insert(k, k);
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert!(tree.node_count() <= peak + 1, "arena slots must be reused");
    }

    /// Range scans match the model for random bounds.
    #[test]
    fn btree_range_equivalence(
        keys in proptest::collection::btree_set(0u64..5000, 0..300),
        lo in 0u64..5000,
        span in 0u64..1000,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(k, k * 3);
        }
        let hi = lo.saturating_add(span);
        let got: Vec<u64> = tree.range(lo, hi).map(|(k, _)| k).collect();
        let want: Vec<u64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, want);
    }
}

/// Generates a random tree as a parent-pointer vector: node i (0-based,
/// root = 0) has parent `parents[i] < i`.
fn arb_tree(max: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(any::<proptest::sample::Index>(), 0..max).prop_map(|choices| {
        let mut parents = vec![0usize]; // root sentinel (unused slot 0)
        for (i, c) in choices.iter().enumerate() {
            let node = i + 1;
            parents.push(c.index(node)); // parent in 0..node
        }
        parents
    })
}

/// Builds pre/post numbering from parent pointers (children in index order).
fn table_from_parents(parents: &[usize]) -> Table {
    let n = parents.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &p) in parents.iter().enumerate().skip(1) {
        children[p].push(i);
    }
    let mut pre = vec![0u32; n];
    let mut post = vec![0u32; n];
    let mut pre_c = 0u32;
    let mut post_c = 0u32;
    // Iterative DFS with explicit phases.
    let mut stack = vec![(0usize, false)];
    while let Some((node, entered)) = stack.pop() {
        if entered {
            post_c += 1;
            post[node] = post_c;
            continue;
        }
        pre_c += 1;
        pre[node] = pre_c;
        stack.push((node, true));
        for &c in children[node].iter().rev() {
            stack.push((c, false));
        }
    }
    let mut table = Table::new(2);
    // Insert in pre order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| pre[i]);
    for i in order {
        let parent_pre = if i == 0 { 0 } else { pre[parents[i]] };
        table
            .insert(Row {
                loc: Loc {
                    pre: pre[i],
                    post: post[i],
                    parent: parent_pre,
                },
                poly: vec![0u8; 2].into_boxed_slice(),
            })
            .unwrap();
    }
    table
}

proptest! {
    /// Indexed children/descendant scans agree with brute force on random trees.
    #[test]
    fn table_scans_match_bruteforce(parents in arb_tree(60)) {
        let table = table_from_parents(&parents);
        table.check_integrity().unwrap();
        let locs = table.all_locs();
        for &loc in &locs {
            // children_of vs filter.
            let kids = table.children_of(loc.pre);
            let brute: Vec<Loc> = locs.iter().copied().filter(|l| l.parent == loc.pre).collect();
            prop_assert_eq!(kids, brute);
            // descendants via index vs scan baseline.
            prop_assert_eq!(table.descendants_of(loc), table.descendants_of_scan(loc));
        }
        // Root is pre = 1.
        prop_assert_eq!(table.root().unwrap().loc.pre, 1);
    }

    /// Save/load round-trips random tables bit-exactly.
    #[test]
    fn persistence_round_trip(parents in arb_tree(40), tag in any::<u32>()) {
        let table = table_from_parents(&parents);
        let path = std::env::temp_dir()
            .join("ssx_store_proptests")
            .join(format!("t{tag}.ssxdb"));
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        ssx_store::save_table(&table, &path).unwrap();
        let back = ssx_store::load_table(&path).unwrap();
        prop_assert_eq!(back.rows(), table.rows());
        std::fs::remove_file(&path).ok();
    }
}
