//! Entity escaping and unescaping.

use std::borrow::Cow;

/// Escapes character data: `& < >` (the minimum for well-formed output).
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes attribute values: also `"` so values can be double-quoted.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolves the predefined entities and numeric character references.
/// Unknown entities are preserved verbatim (lenient mode, like most SAX
/// parsers outside validating contexts).
pub fn unescape(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        match tail.find(';') {
            Some(semi) if semi <= 12 => {
                let name = &tail[1..semi];
                match name {
                    "amp" => out.push('&'),
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "apos" => out.push('\''),
                    "quot" => out.push('"'),
                    _ if name.starts_with("#x") || name.starts_with("#X") => {
                        match u32::from_str_radix(&name[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                        {
                            Some(c) => out.push(c),
                            None => out.push_str(&tail[..=semi]),
                        }
                    }
                    _ if name.starts_with('#') => {
                        match name[1..].parse::<u32>().ok().and_then(char::from_u32) {
                            Some(c) => out.push(c),
                            None => out.push_str(&tail[..=semi]),
                        }
                    }
                    _ => out.push_str(&tail[..=semi]),
                }
                rest = &tail[semi + 1..];
            }
            _ => {
                out.push('&');
                rest = &tail[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_round_trip() {
        let nasty = r#"a < b && c > "d""#;
        assert_eq!(unescape(&escape_text(nasty)), nasty);
        assert_eq!(unescape(&escape_attr(nasty)), nasty);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;"), "AB");
        assert_eq!(unescape("&#x1F600;"), "\u{1F600}");
    }

    #[test]
    fn lenient_on_unknown_entities() {
        assert_eq!(unescape("&nbsp; &x"), "&nbsp; &x");
        assert_eq!(unescape("100% &"), "100% &");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
    }

    #[test]
    fn predefined_entities() {
        assert_eq!(
            unescape("&lt;tag&gt; &amp; &apos;q&apos; &quot;"),
            "<tag> & 'q' \""
        );
    }
}
