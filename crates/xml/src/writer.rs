//! Streaming XML serialisation.
//!
//! Used by the DOM for round-tripping and by the XMark generator to stream
//! multi-megabyte documents without building a tree first.

use crate::escape::{escape_attr, escape_text};

/// An event-driven XML writer.
pub struct XmlWriter {
    out: String,
    stack: Vec<String>,
    pretty: bool,
    /// The current element has been opened with `<name` but not yet closed
    /// with `>` — attributes may still be appended.
    tag_open: bool,
    /// The current element has child content (so `</name>` is required
    /// instead of `/>`).
    has_content: Vec<bool>,
}

impl XmlWriter {
    /// Creates a writer; `pretty` adds newline + two-space indentation.
    pub fn new(pretty: bool) -> Self {
        XmlWriter {
            out: String::new(),
            stack: Vec::new(),
            pretty,
            tag_open: false,
            has_content: Vec::new(),
        }
    }

    /// Opens `<name`.
    pub fn start_element(&mut self, name: &str) {
        self.close_pending_tag(true);
        if self.pretty && !self.out.is_empty() {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_string());
        self.has_content.push(false);
        self.tag_open = true;
    }

    /// Adds an attribute to the currently open start tag. Panics when no
    /// start tag is open (programming error in the caller).
    pub fn attribute(&mut self, name: &str, value: &str) {
        assert!(self.tag_open, "attribute() outside a start tag");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Writes escaped character data.
    pub fn text(&mut self, text: &str) {
        self.close_pending_tag(true);
        self.out.push_str(&escape_text(text));
    }

    /// Closes the innermost open element.
    pub fn end_element(&mut self) {
        let name = self.stack.pop().expect("end_element without start_element");
        let had_content = self.has_content.pop().expect("stack in sync");
        if self.tag_open {
            // Empty element: <name/>
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            if self.pretty && had_content {
                self.out.push('\n');
                for _ in 0..self.stack.len() {
                    self.out.push_str("  ");
                }
            }
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
    }

    /// Finishes and returns the document text. Panics if elements are open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed elements: {:?}", self.stack);
        self.out
    }

    /// Bytes written so far (used by the generator to hit size targets).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn close_pending_tag(&mut self, mark_content: bool) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
        if mark_content {
            if let Some(last) = self.has_content.last_mut() {
                *last = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::PullParser;

    #[test]
    fn basic_structure() {
        let mut w = XmlWriter::new(false);
        w.start_element("a");
        w.start_element("b");
        w.text("hi");
        w.end_element();
        w.start_element("c");
        w.end_element();
        w.end_element();
        assert_eq!(w.finish(), "<a><b>hi</b><c/></a>");
    }

    #[test]
    fn attributes_escaped() {
        let mut w = XmlWriter::new(false);
        w.start_element("a");
        w.attribute("x", "1 & 2 \"q\"");
        w.end_element();
        let s = w.finish();
        assert_eq!(s, "<a x=\"1 &amp; 2 &quot;q&quot;\"/>");
        // And the parser reads it back intact.
        let evs = PullParser::parse_all(&s).unwrap();
        match &evs[0] {
            crate::parser::XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "1 & 2 \"q\"");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn text_escaped() {
        let mut w = XmlWriter::new(false);
        w.start_element("a");
        w.text("x < y & z");
        w.end_element();
        assert_eq!(w.finish(), "<a>x &lt; y &amp; z</a>");
    }

    #[test]
    fn pretty_output_indents() {
        let mut w = XmlWriter::new(true);
        w.start_element("a");
        w.start_element("b");
        w.end_element();
        w.end_element();
        assert_eq!(w.finish(), "<a>\n  <b/>\n</a>");
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn finish_with_open_elements_panics() {
        let mut w = XmlWriter::new(false);
        w.start_element("a");
        let _ = w.finish();
    }

    #[test]
    fn len_tracks_output() {
        let mut w = XmlWriter::new(false);
        assert!(w.is_empty());
        w.start_element("abc");
        w.end_element();
        assert_eq!(w.len(), "<abc/>".len());
    }
}
