//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` and reference each other by [`NodeId`]
//! (index), which keeps the tree compact and makes pre/post traversal
//! numbering (the storage layout of the paper's relational table) a single
//! pass.

use crate::parser::{PullParser, XmlError, XmlEvent};
use crate::writer::XmlWriter;

/// Index of a node in its [`Document`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a tag name.
    Element(String),
    /// A text node (character data).
    Text(String),
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A parsed XML document as an arena of element and text nodes.
///
/// Attributes are dropped at DOM construction: the encoding scheme of the
/// paper operates on element tags (and, with the trie extension, text), so
/// the DOM carries exactly what the database encodes.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Parses a document from text.
    pub fn parse(text: &str) -> Result<Document, XmlError> {
        let events = PullParser::parse_all(text)?;
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root = None;
        for ev in events {
            match ev {
                XmlEvent::StartElement { name, .. } => {
                    let id = NodeId(nodes.len() as u32);
                    let parent = stack.last().copied();
                    nodes.push(Node {
                        kind: NodeKind::Element(name),
                        parent,
                        children: vec![],
                    });
                    if let Some(p) = parent {
                        nodes[p.0 as usize].children.push(id);
                    } else {
                        root = Some(id);
                    }
                    stack.push(id);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                XmlEvent::Text(t) => {
                    // Skip ignorable whitespace between elements.
                    if t.trim().is_empty() {
                        continue;
                    }
                    let parent = match stack.last().copied() {
                        Some(p) => p,
                        None => continue,
                    };
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node {
                        kind: NodeKind::Text(t),
                        parent: Some(parent),
                        children: vec![],
                    });
                    nodes[parent.0 as usize].children.push(id);
                }
            }
        }
        let root = root.ok_or_else(|| XmlError::BadDocumentStructure("no root".into()))?;
        Ok(Document { nodes, root })
    }

    /// Builds a single-element document (building block for synthetic trees).
    pub fn new(root_name: &str) -> Document {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Element(root_name.to_string()),
                parent: None,
                children: vec![],
            }],
            root: NodeId(0),
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no nodes (cannot happen via public
    /// constructors; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element(_)))
            .count()
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.0 as usize].kind
    }

    /// Element name, `None` for text nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.0 as usize].kind {
            NodeKind::Element(n) => Some(n),
            NodeKind::Text(_) => None,
        }
    }

    /// Text content, `None` for elements.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.0 as usize].kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element(_) => None,
        }
    }

    /// Parent, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0 as usize].parent
    }

    /// Children in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0 as usize].children
    }

    /// Child *elements* in document order (text nodes filtered out).
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| matches!(self.kind(c), NodeKind::Element(_)))
    }

    /// Appends a new element under `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Element(name.to_string()),
            parent: Some(parent),
            children: vec![],
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Appends a text node under `parent`, returning its id.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Text(text.to_string()),
            parent: Some(parent),
            children: vec![],
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Removes all children of `id` (used by the trie transformation when a
    /// text node is replaced by a trie subtree).
    pub fn clear_children(&mut self, id: NodeId) {
        let children = std::mem::take(&mut self.nodes[id.0 as usize].children);
        for c in children {
            self.nodes[c.0 as usize].parent = None;
        }
    }

    /// Depth-first pre-order walk over *all* nodes starting at `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push in reverse so children pop in document order.
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Assigns the paper's pre/post numbering to every *element* node:
    /// `pre` counts open tags (root = 1), `post` counts close tags. Text
    /// nodes are skipped (the base scheme stores only elements). Returns
    /// `(id, pre, post, parent_pre)` tuples in pre order; the root's
    /// `parent_pre` is 0.
    pub fn pre_post_numbering(&self) -> Vec<(NodeId, u32, u32, u32)> {
        let mut out: Vec<(NodeId, u32, u32, u32)> = Vec::new();
        let mut slot_of = vec![usize::MAX; self.nodes.len()];
        let mut pre = 0u32;
        let mut post = 0u32;
        // (node, parent_pre, entered)
        let mut stack: Vec<(NodeId, u32, bool)> = vec![(self.root, 0, false)];
        while let Some((id, parent_pre, entered)) = stack.pop() {
            if entered {
                post += 1;
                // Patch the post value now that the subtree is closed.
                out[slot_of[id.0 as usize]].2 = post;
                continue;
            }
            if matches!(self.kind(id), NodeKind::Text(_)) {
                continue;
            }
            pre += 1;
            slot_of[id.0 as usize] = out.len();
            out.push((id, pre, 0, parent_pre));
            stack.push((id, parent_pre, true));
            for &c in self.children(id).iter().rev() {
                stack.push((c, pre, false));
            }
        }
        out
    }

    /// Serialises back to XML text.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new(false);
        self.write_node(self.root, &mut w);
        w.finish()
    }

    /// Serialises with indentation (tests and examples).
    pub fn to_pretty_xml(&self) -> String {
        let mut w = XmlWriter::new(true);
        self.write_node(self.root, &mut w);
        w.finish()
    }

    /// Iterative serialisation — safe for arbitrarily deep documents (the
    /// parser is iterative too, so depth is bounded only by memory).
    fn write_node(&self, id: NodeId, w: &mut XmlWriter) {
        let mut stack: Vec<(NodeId, bool)> = vec![(id, false)];
        while let Some((node, entered)) = stack.pop() {
            if entered {
                w.end_element();
                continue;
            }
            match self.kind(node) {
                NodeKind::Element(name) => {
                    w.start_element(name);
                    stack.push((node, true));
                    for &c in self.children(node).iter().rev() {
                        stack.push((c, false));
                    }
                }
                NodeKind::Text(t) => w.text(t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse("<a><b>hi</b><c/></a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.name(root), Some("a"));
        let kids: Vec<_> = doc.child_elements(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.name(kids[0]), Some("b"));
        let b_children = doc.children(kids[0]);
        assert_eq!(doc.text(b_children[0]), Some("hi"));
        assert_eq!(doc.parent(kids[1]), Some(root));
        assert_eq!(doc.parent(root), None);
    }

    #[test]
    fn pre_post_numbering_matches_paper_convention() {
        // <a> <b> <c/> </b> <d/> </a>
        // pre:  a=1 b=2 c=3 d=4
        // post: c=1 b=2 d=3 a=4
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let rows = doc.pre_post_numbering();
        let by_name: Vec<(&str, u32, u32, u32)> = rows
            .iter()
            .map(|&(id, pre, post, pp)| (doc.name(id).unwrap(), pre, post, pp))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("a", 1, 4, 0),
                ("b", 2, 2, 1),
                ("c", 3, 1, 2),
                ("d", 4, 3, 1)
            ]
        );
    }

    #[test]
    fn descendant_interval_property() {
        // v is a descendant of u iff pre(v) > pre(u) && post(v) < post(u).
        let doc = Document::parse("<r><a><b/><c><d/></c></a><e><f/></e></r>").unwrap();
        let rows = doc.pre_post_numbering();
        let lookup: std::collections::HashMap<NodeId, (u32, u32)> = rows
            .iter()
            .map(|&(id, pre, post, _)| (id, (pre, post)))
            .collect();
        for &(u, u_pre, u_post, _) in &rows {
            let descendants: std::collections::HashSet<NodeId> = doc
                .descendants(u)
                .into_iter()
                .filter(|&d| d != u && doc.name(d).is_some())
                .collect();
            for &(v, ..) in &rows {
                if v == u {
                    continue;
                }
                let (v_pre, v_post) = lookup[&v];
                let interval_says = v_pre > u_pre && v_post < u_post;
                assert_eq!(interval_says, descendants.contains(&v));
            }
        }
    }

    #[test]
    fn text_nodes_skipped_in_numbering() {
        let doc = Document::parse("<a>hello<b>world</b></a>").unwrap();
        let rows = doc.pre_post_numbering();
        assert_eq!(rows.len(), 2, "only elements get pre/post numbers");
    }

    #[test]
    fn serialise_round_trip() {
        let src =
            "<site><regions><europe><item><name>Bicycle</name></item></europe></regions></site>";
        let doc = Document::parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
        let again = Document::parse(&doc.to_xml()).unwrap();
        assert_eq!(again.to_xml(), src);
    }

    #[test]
    fn mutation_api() {
        let mut doc = Document::new("root");
        let a = doc.add_element(doc.root(), "a");
        doc.add_text(a, "content");
        let b = doc.add_element(doc.root(), "b");
        assert_eq!(doc.to_xml(), "<root><a>content</a><b/></root>");
        doc.clear_children(b);
        assert_eq!(doc.children(b).len(), 0);
    }

    #[test]
    fn whitespace_between_elements_ignored() {
        let doc = Document::parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
    }

    #[test]
    fn element_count_excludes_text() {
        let doc = Document::parse("<a>t1<b>t2</b></a>").unwrap();
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.element_count(), 2);
    }
}
