//! The streaming pull parser.
//!
//! `O(depth)` state: the only growing structure is the open-tag stack used
//! for well-formedness checking. This is the property the paper's thin-client
//! story depends on — the encoder consumes these events directly without ever
//! materialising the document.

use crate::escape::unescape;
use std::fmt;

/// An attribute on a start tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written.
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// A parse event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v">` or the opening half of `<name/>`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` or the closing half of `<name/>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entity references resolved). Whitespace-only runs are
    /// reported too; callers decide what to keep.
    Text(String),
}

/// A borrowed parse token from [`PullParser::next_token`]: element
/// boundaries plus character data, with names always borrowed from the
/// input and text borrowed unless entity resolution forced a copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlToken<'a> {
    /// `<name …>` or the opening half of `<name/>`.
    Start(&'a str),
    /// `</name>` or the closing half of `<name/>`.
    End(&'a str),
    /// One character-data (or CDATA) run.
    Text(std::borrow::Cow<'a, str>),
}

/// Parse errors with byte offsets into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Generic syntax error.
    Syntax {
        /// Byte offset.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
    /// `</b>` closed `<a>`.
    MismatchedTag {
        /// Byte offset of the offending close tag.
        pos: usize,
        /// Tag that was open.
        expected: String,
        /// Tag that was found.
        found: String,
    },
    /// Input ended with open elements.
    UnexpectedEof,
    /// Document had no root element or multiple roots.
    BadDocumentStructure(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { pos, msg } => write!(f, "syntax error at byte {pos}: {msg}"),
            XmlError::MismatchedTag {
                pos,
                expected,
                found,
            } => {
                write!(
                    f,
                    "mismatched tag at byte {pos}: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::BadDocumentStructure(msg) => write!(f, "bad document structure: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// A pull parser over an in-memory document.
///
/// All names are handled as slices of the input; the owned [`XmlEvent`]s
/// from [`PullParser::next`] copy at the API boundary only, and the
/// allocation-free [`PullParser::next_element`] never copies at all.
pub struct PullParser<'a> {
    input: &'a [u8],
    text: &'a str,
    pos: usize,
    stack: Vec<&'a str>,
    /// Queued end event for self-closing tags.
    pending_end: Option<&'a str>,
}

impl<'a> PullParser<'a> {
    /// Creates a parser over `text`.
    pub fn new(text: &'a str) -> Self {
        PullParser {
            input: text.as_bytes(),
            text,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
        }
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pulls the next event; `Ok(None)` at clean end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some(XmlEvent::EndElement {
                name: name.to_string(),
            }));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(XmlError::UnexpectedEof);
                }
                return Ok(None);
            }
            if self.input[self.pos] == b'<' {
                match self.peek_markup() {
                    Markup::Comment => self.skip_until(b"-->")?,
                    Markup::Pi => self.skip_until(b"?>")?,
                    Markup::Doctype => self.skip_doctype()?,
                    Markup::Cdata => {
                        let raw = self.parse_cdata()?;
                        return Ok(Some(XmlEvent::Text(raw.to_string())));
                    }
                    Markup::Close => {
                        let name = self.parse_close()?;
                        return Ok(Some(XmlEvent::EndElement {
                            name: name.to_string(),
                        }));
                    }
                    Markup::Open => {
                        let (name, attributes, _) = self.parse_open(true)?;
                        return Ok(Some(XmlEvent::StartElement {
                            name: name.to_string(),
                            attributes,
                        }));
                    }
                }
            } else {
                let raw = self.parse_text()?;
                // Outside the root, only whitespace is allowed.
                if self.stack.is_empty() {
                    if raw.trim().is_empty() {
                        continue;
                    }
                    return Err(XmlError::Syntax {
                        pos: self.pos,
                        msg: "character data outside root element".into(),
                    });
                }
                return Ok(Some(XmlEvent::Text(unescape(raw).into_owned())));
            }
        }
    }

    /// Pulls the next *element* event without allocating: `(name, true)`
    /// for a start tag, `(name, false)` for an end tag, the name borrowed
    /// from the input. Character data, CDATA, comments, PIs and doctypes
    /// are validated and skipped; attributes are validated and discarded.
    /// This is the encoder's hot path — the base scheme stores tag
    /// structure only.
    pub fn next_element(&mut self) -> Result<Option<(&'a str, bool)>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some((name, false)));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(XmlError::UnexpectedEof);
                }
                return Ok(None);
            }
            if self.input[self.pos] == b'<' {
                match self.peek_markup() {
                    Markup::Comment => self.skip_until(b"-->")?,
                    Markup::Pi => self.skip_until(b"?>")?,
                    Markup::Doctype => self.skip_doctype()?,
                    Markup::Cdata => {
                        self.parse_cdata()?;
                    }
                    Markup::Close => return self.parse_close().map(|name| Some((name, false))),
                    Markup::Open => {
                        let (name, _, _) = self.parse_open(false)?;
                        return Ok(Some((name, true)));
                    }
                }
            } else {
                let raw = self.parse_text()?;
                if self.stack.is_empty() && !raw.trim().is_empty() {
                    return Err(XmlError::Syntax {
                        pos: self.pos,
                        msg: "character data outside root element".into(),
                    });
                }
            }
        }
    }

    /// Pulls the next token without copying names: like
    /// [`PullParser::next_element`] but character data (and CDATA) runs are
    /// reported instead of discarded, borrowed from the input whenever they
    /// contain no entity references. This is the aggregation-aware encoder's
    /// hot path — it needs leaf text to spot numeric values but must not pay
    /// an allocation per element for it.
    pub fn next_token(&mut self) -> Result<Option<XmlToken<'a>>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some(XmlToken::End(name)));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(XmlError::UnexpectedEof);
                }
                return Ok(None);
            }
            if self.input[self.pos] == b'<' {
                match self.peek_markup() {
                    Markup::Comment => self.skip_until(b"-->")?,
                    Markup::Pi => self.skip_until(b"?>")?,
                    Markup::Doctype => self.skip_doctype()?,
                    Markup::Cdata => {
                        let raw = self.parse_cdata()?;
                        return Ok(Some(XmlToken::Text(std::borrow::Cow::Borrowed(raw))));
                    }
                    Markup::Close => {
                        return self.parse_close().map(|name| Some(XmlToken::End(name)))
                    }
                    Markup::Open => {
                        let (name, _, _) = self.parse_open(false)?;
                        return Ok(Some(XmlToken::Start(name)));
                    }
                }
            } else {
                let raw = self.parse_text()?;
                if self.stack.is_empty() {
                    if raw.trim().is_empty() {
                        continue;
                    }
                    return Err(XmlError::Syntax {
                        pos: self.pos,
                        msg: "character data outside root element".into(),
                    });
                }
                return Ok(Some(XmlToken::Text(unescape(raw))));
            }
        }
    }

    /// Collects all events, checking the document is a single rooted tree.
    pub fn parse_all(text: &'a str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut parser = PullParser::new(text);
        let mut events = Vec::new();
        let mut roots = 0usize;
        let mut depth = 0usize;
        while let Some(ev) = parser.next()? {
            match &ev {
                XmlEvent::StartElement { .. } => {
                    if depth == 0 {
                        roots += 1;
                    }
                    depth += 1;
                }
                XmlEvent::EndElement { .. } => depth -= 1,
                XmlEvent::Text(_) => {}
            }
            events.push(ev);
        }
        match roots {
            0 => Err(XmlError::BadDocumentStructure("no root element".into())),
            1 => Ok(events),
            n => Err(XmlError::BadDocumentStructure(format!("{n} root elements"))),
        }
    }

    fn peek_markup(&self) -> Markup {
        let rest = &self.input[self.pos..];
        if rest.starts_with(b"<!--") {
            Markup::Comment
        } else if rest.starts_with(b"<![CDATA[") {
            Markup::Cdata
        } else if rest.starts_with(b"<!") {
            Markup::Doctype
        } else if rest.starts_with(b"<?") {
            Markup::Pi
        } else if rest.starts_with(b"</") {
            Markup::Close
        } else {
            Markup::Open
        }
    }

    fn skip_until(&mut self, terminator: &[u8]) -> Result<(), XmlError> {
        let start = self.pos;
        while self.pos + terminator.len() <= self.input.len() {
            if &self.input[self.pos..self.pos + terminator.len()] == terminator {
                self.pos += terminator.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::Syntax {
            pos: start,
            msg: "unterminated markup".into(),
        })
    }

    /// Skips `<!DOCTYPE …>` including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let start = self.pos;
        let mut depth = 0i32;
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(XmlError::Syntax {
            pos: start,
            msg: "unterminated <! declaration".into(),
        })
    }

    /// Parses a CDATA section, returning the raw content slice. Errors when
    /// outside the root element.
    fn parse_cdata(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        self.pos += "<![CDATA[".len();
        let content_start = self.pos;
        while self.pos + 3 <= self.input.len() {
            if &self.input[self.pos..self.pos + 3] == b"]]>" {
                let content = &self.text[content_start..self.pos];
                self.pos += 3;
                if self.stack.is_empty() {
                    return Err(XmlError::Syntax {
                        pos: start,
                        msg: "CDATA outside root element".into(),
                    });
                }
                return Ok(content);
            }
            self.pos += 1;
        }
        Err(XmlError::Syntax {
            pos: start,
            msg: "unterminated CDATA section".into(),
        })
    }

    /// Scans a character-data run, returning the raw (still escaped) slice.
    fn parse_text(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        Ok(&self.text[start..self.pos])
    }

    fn parse_close(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        self.pos += 2; // "</"
        let name = self.read_name()?;
        self.skip_ws();
        if self.pos >= self.input.len() || self.input[self.pos] != b'>' {
            return Err(XmlError::Syntax {
                pos: self.pos,
                msg: "expected '>'".into(),
            });
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(name),
            Some(open) => Err(XmlError::MismatchedTag {
                pos: start,
                expected: open.to_string(),
                found: name.to_string(),
            }),
            None => Err(XmlError::Syntax {
                pos: start,
                msg: format!("close tag </{name}> with no open element"),
            }),
        }
    }

    /// Parses a start tag. With `collect_attrs` the attributes are unescaped
    /// into owned values; without, they are validated and discarded. The
    /// bool is true for a self-closing tag (whose end event is queued).
    fn parse_open(
        &mut self,
        collect_attrs: bool,
    ) -> Result<(&'a str, Vec<Attribute>, bool), XmlError> {
        self.pos += 1; // '<'
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof);
            }
            match self.input[self.pos] {
                b'>' => {
                    self.pos += 1;
                    self.stack.push(name);
                    return Ok((name, attributes, false));
                }
                b'/' => {
                    if self.input.get(self.pos + 1) != Some(&b'>') {
                        return Err(XmlError::Syntax {
                            pos: self.pos,
                            msg: "expected '/>'".into(),
                        });
                    }
                    self.pos += 2;
                    self.stack.push(name);
                    self.pending_end = Some(name);
                    return Ok((name, attributes, true));
                }
                _ => {
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    if self.pos >= self.input.len() || self.input[self.pos] != b'=' {
                        return Err(XmlError::Syntax {
                            pos: self.pos,
                            msg: format!("expected '=' after attribute '{attr_name}'"),
                        });
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.read_quoted()?;
                    if collect_attrs {
                        attributes.push(Attribute {
                            name: attr_name.to_string(),
                            value: unescape(value).into_owned(),
                        });
                    }
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() && is_name_byte(self.input[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Syntax {
                pos: start,
                msg: "expected a name".into(),
            });
        }
        Ok(&self.text[start..self.pos])
    }

    /// Reads a quoted attribute value, returning the raw (still escaped)
    /// slice.
    fn read_quoted(&mut self) -> Result<&'a str, XmlError> {
        let quote = *self.input.get(self.pos).ok_or(XmlError::UnexpectedEof)?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::Syntax {
                pos: self.pos,
                msg: "expected quoted value".into(),
            });
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XmlError::Syntax {
                pos: start,
                msg: "unterminated attribute".into(),
            });
        }
        let raw = &self.text[start..self.pos];
        self.pos += 1;
        Ok(raw)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

enum Markup {
    Comment,
    Pi,
    Doctype,
    Cdata,
    Close,
    Open,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<XmlEvent> {
        PullParser::parse_all(s).unwrap()
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            events("<a><b/>hi</a>"),
            vec![
                start("a"),
                start("b"),
                end("b"),
                XmlEvent::Text("hi".into()),
                end("a")
            ]
        );
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[1].value, "two & three");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prolog_comment_doctype_skipped() {
        let doc = "<?xml version=\"1.0\"?>\n<!DOCTYPE site [<!ELEMENT a (b)>]>\n<!-- c -->\n<a/>";
        assert_eq!(events(doc), vec![start("a"), end("a")]);
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            events("<a><![CDATA[<not> & markup]]></a>"),
            vec![
                start("a"),
                XmlEvent::Text("<not> & markup".into()),
                end("a")
            ]
        );
    }

    #[test]
    fn entities_in_text() {
        assert_eq!(
            events("<a>x &lt; y &#38; z</a>"),
            vec![start("a"), XmlEvent::Text("x < y & z".into()), end("a")]
        );
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = PullParser::parse_all("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }), "{err:?}");
    }

    #[test]
    fn eof_with_open_elements_rejected() {
        assert_eq!(
            PullParser::parse_all("<a><b>").unwrap_err(),
            XmlError::UnexpectedEof
        );
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = PullParser::parse_all("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::BadDocumentStructure(_)));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(PullParser::parse_all("<a/>junk").is_err());
        // Whitespace is fine.
        assert!(PullParser::parse_all("  <a/>  \n").is_ok());
    }

    #[test]
    fn close_without_open_rejected() {
        assert!(matches!(
            PullParser::parse_all("</a>").unwrap_err(),
            XmlError::Syntax { .. }
        ));
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut p = PullParser::new("<a><b><c/></b></a>");
        assert_eq!(p.depth(), 0);
        p.next().unwrap(); // <a>
        assert_eq!(p.depth(), 1);
        p.next().unwrap(); // <b>
        p.next().unwrap(); // <c>
        assert_eq!(p.depth(), 3);
        p.next().unwrap(); // </c>
        p.next().unwrap(); // </b>
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn whitespace_text_preserved_inside_root() {
        // start a, " ", start b, end b, " ", end a
        let evs = events("<a> <b/> </a>");
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[1], XmlEvent::Text(" ".into()));
        assert_eq!(evs[4], XmlEvent::Text(" ".into()));
    }

    #[test]
    fn unterminated_markup_errors() {
        assert!(PullParser::parse_all("<a><!-- never closed").is_err());
        assert!(PullParser::parse_all("<a><![CDATA[oops").is_err());
        assert!(PullParser::parse_all("<a hello").is_err());
        assert!(PullParser::parse_all("<a x=>").is_err());
        assert!(PullParser::parse_all("<a x=\"unterminated>").is_err());
    }
}
