#![warn(missing_docs)]

//! A small, dependency-free XML layer: streaming pull parser, arena DOM and
//! serializer.
//!
//! The paper's prototype parses documents with a SAX parser so that "there is
//! no need for a big client machine with lots of memory … It only needs
//! memory proportional to the depth of the tree" (§5.1). [`PullParser`]
//! provides exactly that: an iterator of [`XmlEvent`]s over the input with
//! `O(depth)` state. [`Document`] is an index-based arena DOM built on top,
//! used by the plaintext reference engine, the trie transformation and the
//! test oracles.
//!
//! Supported XML subset (sufficient for XMark-style documents):
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions and `<!DOCTYPE …>` (skipped), and the five
//! predefined entities plus decimal/hex character references.

pub mod dom;
pub mod escape;
pub mod parser;
pub mod writer;

pub use dom::{Document, NodeId, NodeKind};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::{Attribute, PullParser, XmlError, XmlEvent, XmlToken};
pub use writer::XmlWriter;
