//! Property tests: parse→serialise→parse must be a fixpoint for arbitrary
//! generated documents, and numbering invariants must hold on random trees.

use proptest::prelude::*;
use ssx_xml::{Document, NodeKind};

/// Recursive strategy for random XML trees rendered as text.
fn arb_tree() -> impl Strategy<Value = String> {
    let name = prop_oneof![
        Just("site".to_string()),
        Just("item".to_string()),
        Just("a".to_string()),
        Just("person-x".to_string()),
        Just("b2".to_string()),
    ];
    let text = "[ -~]{0,12}"; // printable ASCII runs
    let leaf = (name.clone(), text.prop_map(|s| s)).prop_map(|(n, t)| {
        if t.trim().is_empty() {
            format!("<{n}/>")
        } else {
            format!("<{n}>{}</{n}>", ssx_xml::escape_text(&t))
        }
    });
    leaf.prop_recursive(4, 32, 4, move |inner| {
        (
            prop_oneof![
                Just("r".to_string()),
                Just("group".to_string()),
                Just("x_y".to_string())
            ],
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(n, kids)| {
                if kids.is_empty() {
                    format!("<{n}/>")
                } else {
                    format!("<{n}>{}</{n}>", kids.join(""))
                }
            })
    })
}

proptest! {
    #[test]
    fn parse_serialise_fixpoint(doc_text in arb_tree()) {
        let doc = Document::parse(&doc_text).expect("generated doc parses");
        let once = doc.to_xml();
        let doc2 = Document::parse(&once).expect("serialised doc parses");
        let twice = doc2.to_xml();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn numbering_invariants(doc_text in arb_tree()) {
        let doc = Document::parse(&doc_text).unwrap();
        let rows = doc.pre_post_numbering();
        // Bijective pre numbers 1..=n, post numbers a permutation of the same.
        let n = rows.len() as u32;
        let mut pres: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let mut posts: Vec<u32> = rows.iter().map(|r| r.2).collect();
        pres.sort_unstable();
        posts.sort_unstable();
        prop_assert_eq!(&pres, &(1..=n).collect::<Vec<_>>());
        prop_assert_eq!(&posts, &(1..=n).collect::<Vec<_>>());
        // Root first, parent_pre = 0 exactly once.
        prop_assert_eq!(rows[0].3, 0);
        prop_assert_eq!(rows.iter().filter(|r| r.3 == 0).count(), 1);
        // Every parent_pre refers to an earlier pre.
        for &(_, pre, _, parent_pre) in &rows[1..] {
            prop_assert!(parent_pre < pre);
        }
    }

    #[test]
    fn descendant_counts_match(doc_text in arb_tree()) {
        let doc = Document::parse(&doc_text).unwrap();
        let all = doc.descendants(doc.root());
        prop_assert_eq!(all.len(), doc.len());
        let elements = all
            .iter()
            .filter(|&&id| matches!(doc.kind(id), NodeKind::Element(_)))
            .count();
        prop_assert_eq!(elements, doc.element_count());
    }

    #[test]
    fn pretty_print_parses_back(doc_text in arb_tree()) {
        let doc = Document::parse(&doc_text).unwrap();
        let pretty = doc.to_pretty_xml();
        let back = Document::parse(&pretty).expect("pretty output parses");
        // Element structure must be preserved (text may gain whitespace).
        prop_assert_eq!(back.element_count(), doc.element_count());
    }
}
