//! Edge cases for the XML layer: depth, size, odd-but-legal syntax.

use ssx_xml::{Document, PullParser, XmlEvent};

#[test]
fn very_deep_nesting_round_trips() {
    // 50k levels: the parser, DOM builder, numbering and serializer are all
    // iterative, so this must work without stack overflow.
    let depth = 50_000;
    let mut xml = String::with_capacity(depth * 7);
    for _ in 0..depth - 1 {
        xml.push_str("<a>");
    }
    xml.push_str("<a/>"); // innermost empty element, serializer-canonical
    for _ in 0..depth - 1 {
        xml.push_str("</a>");
    }
    let doc = Document::parse(&xml).unwrap();
    assert_eq!(doc.element_count(), depth);
    let rows = doc.pre_post_numbering();
    assert_eq!(rows.len(), depth);
    // Innermost node: pre = depth, post = 1.
    assert_eq!(rows.last().unwrap().1, depth as u32);
    assert_eq!(rows.last().unwrap().2, 1);
    assert_eq!(doc.to_xml(), xml);
}

#[test]
fn very_wide_fanout() {
    let width = 100_000;
    let mut xml = String::from("<r>");
    for _ in 0..width {
        xml.push_str("<c/>");
    }
    xml.push_str("</r>");
    let doc = Document::parse(&xml).unwrap();
    assert_eq!(doc.children(doc.root()).len(), width);
    let rows = doc.pre_post_numbering();
    assert_eq!(rows.len(), width + 1);
}

#[test]
fn parser_depth_is_streaming() {
    // The pull parser's only growing state is the open-tag stack.
    let mut xml = String::new();
    for i in 0..1000 {
        xml.push_str(&format!("<e{i}>"));
    }
    for i in (0..1000).rev() {
        xml.push_str(&format!("</e{i}>"));
    }
    let mut p = PullParser::new(&xml);
    let mut max_depth = 0;
    while let Some(_ev) = p.next().unwrap() {
        max_depth = max_depth.max(p.depth());
    }
    assert_eq!(max_depth, 1000);
}

#[test]
fn mixed_prolog_and_trailing_whitespace() {
    let doc = "\u{feff}".to_string()
        + "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- header -->\n<a/>\n\n";
    // BOM before the prolog is text outside the root; our parser treats the
    // BOM as non-whitespace text -> error. Strip-BOM is the caller's job.
    assert!(PullParser::parse_all(&doc).is_err());
    let ok = "<?xml version=\"1.0\"?>\n<a/>\n";
    assert!(PullParser::parse_all(ok).is_ok());
}

#[test]
fn unicode_content_and_names() {
    let xml = "<données><ville>Enschede — Überlingen</ville><名前>テスト</名前></données>";
    let doc = Document::parse(xml).unwrap();
    assert_eq!(doc.name(doc.root()), Some("données"));
    let kids: Vec<_> = doc.child_elements(doc.root()).collect();
    assert_eq!(doc.name(kids[1]), Some("名前"));
    assert_eq!(doc.to_xml(), xml);
}

#[test]
fn adjacent_cdata_and_text_merge_order() {
    let evs = PullParser::parse_all("<a>one<![CDATA[ two ]]>three</a>").unwrap();
    let texts: Vec<&str> = evs
        .iter()
        .filter_map(|e| match e {
            XmlEvent::Text(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(texts, vec!["one", " two ", "three"]);
}

#[test]
fn comments_inside_elements_are_invisible() {
    let doc = Document::parse("<a><!-- hidden --><b/><!-- also --></a>").unwrap();
    assert_eq!(doc.children(doc.root()).len(), 1);
}

#[test]
fn attribute_heavy_elements() {
    let mut xml = String::from("<a");
    for i in 0..500 {
        xml.push_str(&format!(" k{i}=\"v{i}\""));
    }
    xml.push_str("/>");
    let evs = PullParser::parse_all(&xml).unwrap();
    match &evs[0] {
        XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes.len(), 500),
        other => panic!("{other:?}"),
    }
}

#[test]
fn crlf_and_tabs_are_whitespace() {
    let doc = Document::parse("<a>\r\n\t<b/>\r\n</a>").unwrap();
    assert_eq!(doc.children(doc.root()).len(), 1);
}

#[test]
fn doctype_with_internal_subset_skipped() {
    let xml = r#"<!DOCTYPE site [
        <!ELEMENT site (a)>
        <!ENTITY x "y">
    ]><site><a/></site>"#;
    let doc = Document::parse(xml).unwrap();
    assert_eq!(doc.element_count(), 2);
}

#[test]
fn empty_document_and_whitespace_only_are_errors() {
    assert!(PullParser::parse_all("").is_err());
    assert!(PullParser::parse_all("   \n  ").is_err());
    assert!(PullParser::parse_all("<!-- only a comment -->").is_err());
}
