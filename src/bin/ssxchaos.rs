//! `ssxchaos` — a seeded TCP chaos proxy for soaking `ssxdb` deployments.
//!
//! ```text
//! ssxchaos --listen <host:port> --upstream <host:port> [--seed N]
//!          [--profile quiet|soak] [--delay-permille N --delay-ms MS]
//!          [--drop-permille N] [--reset-permille N] [--flip-permille N]
//!          [--reorder-permille N]
//! ```
//!
//! Sits between an unmodified client and host and mangles the
//! length-prefixed frames with a deterministic, seed-keyed fault stream:
//! delay, drop, reset, reorder, bit flip. The same seed replays the same
//! fault schedule, so a failure found behind the proxy reproduces exactly.
//! Put one in front of each fleet party and point `ssxdb remote --fleet`
//! at the proxy addresses.

use ssxdb::core::chaos::run_chaos_proxy;
use ssxdb::core::ChaosConfig;
use std::net::{TcpListener, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut listen = None;
    let mut upstream = None;
    let mut seed = 7u64;
    let mut cfg_template: Option<fn(u64) -> ChaosConfig> = None;
    let mut overrides: Vec<(String, u64)> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument '{a}'; try --help"));
        };
        if name == "help" || name == "h" {
            print!("{USAGE}");
            return Ok(());
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        match name {
            "listen" => listen = Some(value),
            "upstream" => upstream = Some(value),
            "seed" => seed = value.parse().map_err(|_| "bad --seed")?,
            "profile" => {
                cfg_template = Some(match value.as_str() {
                    "quiet" => ChaosConfig::quiet,
                    "soak" => ChaosConfig::soak,
                    other => return Err(format!("unknown profile '{other}' (quiet|soak)")),
                })
            }
            "delay-permille" | "delay-ms" | "drop-permille" | "reset-permille"
            | "flip-permille" | "reorder-permille" => {
                let n: u64 = value.parse().map_err(|_| format!("bad --{name}"))?;
                overrides.push((name.to_string(), n));
            }
            other => return Err(format!("unknown flag --{other}; try --help")),
        }
    }
    let listen = listen.ok_or("missing --listen")?;
    let upstream = upstream.ok_or("missing --upstream")?;
    let upstream = upstream
        .to_socket_addrs()
        .map_err(|e| format!("resolve --upstream: {e}"))?
        .next()
        .ok_or("upstream resolved to nothing")?;
    let mut cfg = cfg_template.unwrap_or(ChaosConfig::soak)(seed);
    for (name, n) in overrides {
        match name.as_str() {
            "delay-permille" => cfg.delay_per_mille = n as u32,
            "delay-ms" => cfg.delay = std::time::Duration::from_millis(n),
            "drop-permille" => cfg.drop_per_mille = n as u32,
            "reset-permille" => cfg.reset_per_mille = n as u32,
            "flip-permille" => cfg.flip_per_mille = n as u32,
            "reorder-permille" => cfg.reorder_per_mille = n as u32,
            _ => unreachable!(),
        }
    }
    let listener = TcpListener::bind(&listen).map_err(|e| format!("bind {listen}: {e}"))?;
    println!(
        "chaos proxy on {listen} -> {upstream} (seed {seed}): \
         delay {}‰/{:?}, drop {}‰, reset {}‰, flip {}‰, reorder {}‰",
        cfg.delay_per_mille,
        cfg.delay,
        cfg.drop_per_mille,
        cfg.reset_per_mille,
        cfg.flip_per_mille,
        cfg.reorder_per_mille
    );
    println!("replay any failure with --seed {seed}; Ctrl-C stops the proxy");
    run_chaos_proxy(&listener, upstream, cfg, &AtomicBool::new(false));
    Ok(())
}

const USAGE: &str = "\
ssxchaos — seeded TCP chaos proxy for ssxdb hosts

  ssxchaos --listen HOST:PORT --upstream HOST:PORT [--seed N]
           [--profile quiet|soak] [--delay-permille N] [--delay-ms MS]
           [--drop-permille N] [--reset-permille N] [--flip-permille N]
           [--reorder-permille N]

The fault stream is keyed by --seed: the same seed replays the same
schedule. Defaults to the soak profile (a moderate all-fault mix).
";
