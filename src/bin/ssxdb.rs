//! `ssxdb` — command-line front end for the secret-shared XML database.
//!
//! ```text
//! ssxdb keygen  <seed-file>
//! ssxdb genmap  [--p 83] [--e 1] (--doc <xml> | --dtd | --names a,b,c) [--trie-alphabet] <map-file>
//! ssxdb xmark   [--bytes N] [--seed K] <out.xml>
//! ssxdb encode  --map <map> --seed <seed> [--trie compressed|uncompressed]
//!               [--servers n --threshold t] <in.xml> <out.ssxdb>
//! ssxdb info    <db.ssxdb>
//! ssxdb query   --map <map> --seed <seed> [--engine simple|advanced]
//!               [--rule containment|equality] [--stats] <db.ssxdb> <query>
//! ssxdb agg     --map <map> --seed <seed> --op count|sum|avg [--range LO..HI]
//!               [--engine …] [--rule …] [--stats]
//!               (<db.ssxdb> | --addr <host:port> [--shards S] [--mux]
//!                | --fleet a1,a2,… --threshold t [--mux]) <query>
//! ssxdb insert  --map <map> --seed <seed> [--shards S] [--no-checkpoint]
//!               <db.ssxdb> <doc.xml>
//! ssxdb insert  --map <map> --seed <seed>
//!               (--addr <host:port> [--shards S] | --fleet a1,a2,… --threshold t)
//!               [--mux] [--deadline-ms MS] [--retries N] <doc.xml>
//! ssxdb delete  --map <map> --seed <seed> [--shards S] [--no-checkpoint]
//!               <db.ssxdb> <root-pre>
//! ssxdb delete  --map <map> --seed <seed>
//!               (--addr <host:port> [--shards S] | --fleet a1,a2,… --threshold t)
//!               [--mux] [--deadline-ms MS] [--retries N] <root-pre>
//! ssxdb serve   --p <p> --e <e> --addr <host:port> [--shards S]
//!               [--mux [--workers W] [--write-stall-ms MS]]
//!               [--party i] [--auto-reshard-target BYTES] <db.ssxdb | party-store>
//! ssxdb remote  --map <map> --seed <seed> --addr <host:port> [--shards S]
//!               [--engine …] [--rule …] [--speculate] [--mux] [--deadline-ms MS]
//!               [--stats] <query>
//! ssxdb remote  --map <map> --seed <seed> --fleet a1,a2,… --threshold t
//!               [--engine …] [--rule …] [--speculate] [--mux] [--deadline-ms MS]
//!               [--retries N] [--hedge] [--stats] <query>
//! ssxdb reshard --addr <host:port> --shards <S'>
//! ```
//!
//! `serve --shards S` partitions the table across `S` independent server
//! filters behind one concurrent listener; `remote --shards S` opens one
//! connection per shard and batches each query frontier across them.
//! `remote --speculate` overlaps dependent waves (the next frontier's
//! expansion rides the current wave's frames). `reshard` repartitions a
//! running sharded host **online** — rows move in memory, bit-identically;
//! clients connected under the old shard count must reconnect.
//!
//! `serve --mux` swaps the thread-per-connection host for the multiplexed
//! one: a fixed pool of reader/executor/writer threads (`--workers W`,
//! default 4) over nonblocking sockets, answering correlation-tagged
//! frames out of order so any number of concurrent clients overlap their
//! query waves. Legacy (non-mux) clients are still served unchanged.
//! `remote --mux` connects through the correlation envelope — one
//! multiplexed socket per shard.
//!
//! `encode --servers n --threshold t` splits the database into `n`
//! per-party share stores (`out.party1.ssxdb` … `out.partyN.ssxdb`), any
//! `t` of which reconstruct; fewer reveal nothing beyond table shape.
//! `serve --party i` hosts one party's store (data + MAC planes behind
//! `2·S` shard ids); `remote --fleet a1,a2,… --threshold t` fans every
//! wave out to all live parties and reconstructs client-side with MAC
//! verification — a corrupted share is detected and attributed, a dead
//! party is tolerated down to `t` responders.
//!
//! The resilience knobs: `--deadline-ms MS` bounds every call (a hung
//! party fails with a typed timeout instead of hanging the query),
//! `--retries N` retries transient failures with exponential backoff over
//! a fresh connection, and `--hedge` answers each fleet wave from the
//! first `t` verified responses while stragglers drain in the background.
//! On the host side, `serve --mux --write-stall-ms MS` bounds how long a
//! non-reading client may stall a writer before its connection is shed.
//!
//! `insert` and `delete` are the write plane. Against a local store they
//! open the snapshot **durably**: mutations append to a checksummed
//! write-ahead log beside the database (`<db>.wal`) after the store acks
//! them, and the snapshot is rewritten (and the log truncated) on exit —
//! `--no-checkpoint` skips that last step, leaving the mutation in the
//! log alone so the next open replays it (the crash-recovery path,
//! exercisable by hand). Against `--addr`/`--fleet` they mutate the live
//! host in place: the client encodes the document at the store's
//! high-water `pre` offset and ships ready-made share rows (re-split per
//! party over a fleet), so the server never sees the map or seed.
//! Deletes take the document's root `pre` (printed by `insert`) and
//! remove the whole subtree.
//!
//! The map and seed files are the client secrets; `info`, `serve` and
//! `reshard` work without them (they only touch what the untrusted server
//! would hold).

use ssxdb::core::{
    encode_document, encode_dom, party_server, run_aggregate, serve_tcp, serve_tcp_mux_opts,
    serve_tcp_sharded, serve_tcp_sharded_auto, split_fleet, AggOp, AggregateSpec, ClientFilter,
    EncryptedDb, Engine, EngineKind, FleetSpec, MapFile, MatchRule, MuxHostOptions, MuxPool,
    RemoteDb, RemoteFleetDb, RemoteMuxDb, RemoteMuxFleetDb, ResilienceConfig, ServerFilter,
    ShardRouter, ShardedServer, Transport,
};
use ssxdb::poly::RingCtx;
use ssxdb::prg::Seed;
use ssxdb::store::{
    load_party, load_table_with_wal, save_party, save_table, PartyHeader, Table, WalReplay,
};
use ssxdb::trie::{transform_document, trie_alphabet, TrieMode};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xml::Document;
use ssxdb::xpath::parse_query;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut parser = Args::new(args);
    let command = parser.positional("command")?;
    match command.as_str() {
        "keygen" => keygen(parser),
        "genmap" => genmap(parser),
        "xmark" => xmark(parser),
        "encode" => encode(parser),
        "info" => info(parser),
        "query" => query(parser),
        "agg" => agg(parser),
        "insert" => insert(parser),
        "delete" => delete(parser),
        "serve" => serve(parser),
        "remote" => remote(parser),
        "reshard" => reshard(parser),
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try 'ssxdb help'")),
    }
}

const USAGE: &str = "\
ssxdb — queries over encrypted XML using secret sharing

commands:
  keygen  <seed-file>                         create a fresh 32-byte seed
  genmap  [--p 83] [--e 1] (--doc <xml> | --dtd | --names a,b,c)
          [--trie-alphabet] <map-file>        create the secret tag map
  xmark   [--bytes N] [--seed K] <out.xml>    generate an auction document
  encode  --map M --seed S [--trie MODE]
          [--servers n --threshold t] <in.xml> <out.ssxdb>
  info    <db.ssxdb>                          sizes & structure (no secrets)
  query   --map M --seed S [--engine simple|advanced]
          [--rule containment|equality] [--stats] <db.ssxdb> <query>
  agg     --map M --seed S --op count|sum|avg [--range LO..HI]
          [--engine ..] [--rule ..] [--stats]
          (<db.ssxdb> | --addr H:P [--shards S] [--mux]
           | --fleet A1,.. --threshold t [--mux]) <query>
  insert  --map M --seed S [--shards S] [--no-checkpoint] <db.ssxdb> <doc.xml>
  insert  --map M --seed S (--addr H:P [--shards S] | --fleet A1,.. --threshold t)
          [--mux] [--deadline-ms MS] [--retries N] <doc.xml>
  delete  --map M --seed S [--shards S] [--no-checkpoint] <db.ssxdb> <root-pre>
  delete  --map M --seed S (--addr H:P [--shards S] | --fleet A1,.. --threshold t)
          [--mux] [--deadline-ms MS] [--retries N] <root-pre>
  serve   --p P --e E --addr HOST:PORT [--shards S]
          [--mux [--workers W] [--write-stall-ms MS]] [--party i]
          [--auto-reshard-target BYTES] <db.ssxdb | party store>
  remote  --map M --seed S --addr HOST:PORT [--shards S]
          [--engine ..] [--rule ..] [--speculate] [--mux]
          [--deadline-ms MS] <query>
  remote  --map M --seed S --fleet A1,A2,.. --threshold t
          [--engine ..] [--rule ..] [--speculate] [--mux]
          [--deadline-ms MS] [--retries N] [--hedge] <query>
  reshard --addr HOST:PORT --shards S'            repartition a live host
";

// ---- tiny argument parser ---------------------------------------------------

struct Args {
    flags: Vec<(String, String)>,
    positionals: Vec<String>,
    cursor: usize,
}

impl Args {
    fn new(raw: Vec<String>) -> Self {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if name == "stats"
                    || name == "dtd"
                    || name == "trie-alphabet"
                    || name == "speculate"
                    || name == "mux"
                    || name == "hedge"
                    || name == "no-checkpoint"
                {
                    // boolean flags
                    flags.push((name.to_string(), "true".to_string()));
                } else {
                    let value = iter.next().unwrap_or_default();
                    flags.push((name.to_string(), value));
                }
            } else {
                positionals.push(a);
            }
        }
        Args {
            flags,
            positionals,
            cursor: 0,
        }
    }

    fn positional(&mut self, what: &str) -> Result<String, String> {
        let v = self
            .positionals
            .get(self.cursor)
            .cloned()
            .ok_or_else(|| format!("missing <{what}>"))?;
        self.cursor += 1;
        Ok(v)
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flag(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn bool(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }
}

fn parse_engine(args: &Args) -> Result<EngineKind, String> {
    match args.flag("engine").unwrap_or("advanced") {
        "simple" => Ok(EngineKind::Simple),
        "advanced" => Ok(EngineKind::Advanced),
        other => Err(format!("unknown engine '{other}' (simple|advanced)")),
    }
}

fn parse_rule(args: &Args) -> Result<MatchRule, String> {
    match args.flag("rule").unwrap_or("equality") {
        "containment" | "nonstrict" => Ok(MatchRule::Containment),
        "equality" | "strict" => Ok(MatchRule::Equality),
        other => Err(format!("unknown rule '{other}' (containment|equality)")),
    }
}

/// Builds the mux host options from `--workers` and `--write-stall-ms`.
fn mux_host_options(args: &Args, auto_target: Option<u64>) -> Result<MuxHostOptions, String> {
    let mut opts = MuxHostOptions {
        auto_target,
        ..MuxHostOptions::default()
    };
    opts.workers = args
        .flag("workers")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --workers")?;
    if let Some(ms) = args.flag("write-stall-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --write-stall-ms")?;
        opts.write_stall = std::time::Duration::from_millis(ms.max(1));
    }
    Ok(opts)
}

/// Builds the fleet resilience policy from `--deadline-ms`, `--retries`
/// and `--hedge`.
fn resilience_options(args: &Args) -> Result<ResilienceConfig, String> {
    let mut cfg = ResilienceConfig::default();
    if let Some(ms) = args.flag("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms")?;
        cfg.deadline = Some(std::time::Duration::from_millis(ms.max(1)));
    }
    if let Some(n) = args.flag("retries") {
        cfg.retries = n.parse().map_err(|_| "bad --retries")?;
    }
    cfg.hedge = args.bool("hedge");
    Ok(cfg)
}

fn load_secrets(args: &Args) -> Result<(MapFile, Seed), String> {
    let map = MapFile::load(Path::new(args.required("map")?)).map_err(|e| e.to_string())?;
    let seed = Seed::load(Path::new(args.required("seed")?)).map_err(|e| e.to_string())?;
    Ok((map, seed))
}

// ---- commands ---------------------------------------------------------------

fn keygen(mut args: Args) -> Result<(), String> {
    let out = PathBuf::from(args.positional("seed-file")?);
    // Entropy from the OS (dev/urandom on Unix); falls back to a time+pid
    // mix if unavailable so the command still works everywhere.
    let mut bytes = [0u8; 32];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut bytes))
        .is_err()
    {
        let mut state = std::process::id() as u64
            ^ std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xDEAD_BEEF);
        let mut prg = ssxdb::prg::Prg::from_u64(state);
        for chunk in bytes.chunks_exact_mut(8) {
            state = prg.next_u64();
            chunk.copy_from_slice(&state.to_le_bytes());
        }
    }
    let seed = Seed::from_bytes(bytes);
    seed.save(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote seed to {} — keep it secret, it IS the key",
        out.display()
    );
    Ok(())
}

fn genmap(mut args: Args) -> Result<(), String> {
    let p: u64 = args
        .flag("p")
        .unwrap_or("83")
        .parse()
        .map_err(|_| "bad --p")?;
    let e: u32 = args
        .flag("e")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --e")?;
    let mut names: Vec<String> = if let Some(doc_path) = args.flag("doc") {
        let text = std::fs::read_to_string(doc_path).map_err(|err| err.to_string())?;
        let doc = Document::parse(&text).map_err(|err| err.to_string())?;
        let mut set = BTreeSet::new();
        for id in doc.descendants(doc.root()) {
            if let Some(n) = doc.name(id) {
                set.insert(n.to_string());
            }
        }
        set.into_iter().collect()
    } else if args.bool("dtd") {
        DTD_ELEMENTS.iter().map(|s| s.to_string()).collect()
    } else if let Some(list) = args.flag("names") {
        list.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    } else {
        return Err("need one of --doc <xml>, --dtd, or --names a,b,c".into());
    };
    if args.bool("trie-alphabet") {
        let existing: BTreeSet<String> = names.iter().cloned().collect();
        for sym in trie_alphabet() {
            if !existing.contains(&sym) {
                names.push(sym);
            }
        }
    }
    let out = PathBuf::from(args.positional("map-file")?);
    // Random assignment keyed from OS entropy via a throwaway seed.
    let mut key = [0u8; 8];
    let _ = std::fs::File::open("/dev/urandom")
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut key));
    let mut prg = ssxdb::prg::Prg::from_u64(u64::from_le_bytes(key));
    let map = MapFile::random(p, e, &names, &mut prg).map_err(|err| err.to_string())?;
    map.save(&out).map_err(|err| err.to_string())?;
    println!(
        "wrote map with {} names over F_{p}^{e} to {}",
        map.len(),
        out.display()
    );
    Ok(())
}

fn xmark(mut args: Args) -> Result<(), String> {
    let bytes: usize = args
        .flag("bytes")
        .unwrap_or("262144")
        .parse()
        .map_err(|_| "bad --bytes")?;
    let seed: u64 = args
        .flag("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = PathBuf::from(args.positional("out.xml")?);
    let xml = generate(&XmarkConfig {
        seed,
        target_bytes: bytes,
    });
    std::fs::write(&out, &xml).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bytes of auction data to {}",
        xml.len(),
        out.display()
    );
    Ok(())
}

fn encode(mut args: Args) -> Result<(), String> {
    let (map, seed) = load_secrets(&args)?;
    let input = PathBuf::from(args.positional("in.xml")?);
    let output = PathBuf::from(args.positional("out.ssxdb")?);
    let xml = std::fs::read_to_string(&input).map_err(|e| e.to_string())?;
    let out = match args.flag("trie") {
        None => encode_document(&xml, &map, &seed).map_err(|e| e.to_string())?,
        Some(mode) => {
            let mode = match mode {
                "compressed" => TrieMode::Compressed,
                "uncompressed" => TrieMode::Uncompressed,
                other => return Err(format!("unknown trie mode '{other}'")),
            };
            let doc = Document::parse(&xml).map_err(|e| e.to_string())?;
            let trie_doc = transform_document(&doc, mode);
            encode_dom(&trie_doc, &map, &seed).map_err(|e| e.to_string())?
        }
    };
    println!(
        "encoded {} elements ({} input bytes) in {:?}",
        out.stats.elements, out.stats.input_bytes, out.stats.elapsed
    );
    if let Some(n) = args.flag("servers") {
        let servers: usize = n.parse().map_err(|_| "bad --servers")?;
        let threshold: usize = args
            .required("threshold")?
            .parse()
            .map_err(|_| "bad --threshold")?;
        let spec = FleetSpec::new(servers, threshold).map_err(|e| e.to_string())?;
        let fleet = split_fleet(out, &seed, spec).map_err(|e| e.to_string())?;
        for party in &fleet.parties {
            let path = party_path(&output, party.party as u32);
            let header = PartyHeader {
                party: party.party as u32,
                servers: servers as u32,
                threshold: threshold as u32,
            };
            save_party(header, &party.data, &party.mac, &path).map_err(|e| e.to_string())?;
            let report = party.data.size_report();
            println!(
                "party {}: {} bytes data + {} bytes mac shares, {}",
                party.party,
                report.data_bytes(),
                party.mac.size_report().data_bytes(),
                path.display()
            );
        }
        println!(
            "split across {servers} server(s); any {threshold} reconstruct, fewer learn nothing"
        );
        return Ok(());
    }
    save_table(&out.table, &output).map_err(|e| e.to_string())?;
    let report = out.table.size_report();
    println!(
        "server database: {} bytes data ({} poly + {} structure), {}",
        report.data_bytes(),
        report.poly_bytes,
        report.structure_bytes,
        output.display()
    );
    Ok(())
}

/// `out.ssxdb` → `out.party3.ssxdb` (extension preserved, stem suffixed).
fn party_path(base: &Path, party: u32) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("fleet");
    let name = match base.extension().and_then(|s| s.to_str()) {
        Some(ext) => format!("{stem}.party{party}.{ext}"),
        None => format!("{stem}.party{party}"),
    };
    base.with_file_name(name)
}

fn info(mut args: Args) -> Result<(), String> {
    let path = PathBuf::from(args.positional("db.ssxdb")?);
    let (table, replay) = load_with_log(&path)?;
    let report = table.size_report();
    println!("{}", path.display());
    println!("  rows (elements):    {}", report.rows);
    println!(
        "  polynomial bytes:   {} ({} per row)",
        report.poly_bytes,
        table.poly_len()
    );
    println!(
        "  structure bytes:    {} ({:.1}% of data)",
        report.structure_bytes,
        100.0 * report.structure_fraction()
    );
    println!("  index bytes:        {}", report.index_bytes);
    if let Some(root) = table.root() {
        println!(
            "  root: pre={} post={} (tree of {} nodes)",
            root.loc.pre, root.loc.post, report.rows
        );
    }
    if replay.records > 0 {
        println!(
            "  pending log:        {} record(s) not yet checkpointed",
            replay.records
        );
    }
    println!("  note: without the map and seed this is all anyone can learn.");
    Ok(())
}

fn open_db(
    args: &Args,
    db_path: &Path,
) -> Result<ClientFilter<ssxdb::core::LocalTransport>, String> {
    let (map, seed) = load_secrets(args)?;
    let (table, _) = load_with_log(db_path)?;
    let ring = RingCtx::new(map.p(), map.e()).map_err(|e| e.to_string())?;
    let server = ServerFilter::new(table, ring);
    ClientFilter::new(ssxdb::core::LocalTransport::new(server), map, seed)
        .map_err(|e| e.to_string())
}

fn query(mut args: Args) -> Result<(), String> {
    let db_path = PathBuf::from(args.positional("db.ssxdb")?);
    let query_text = args.positional("query")?;
    let mut client = open_db(&args, &db_path)?;
    let engine = parse_engine(&args)?;
    let rule = parse_rule(&args)?;
    let q = parse_query(&query_text)
        .map_err(|e| e.to_string())?
        .expand_text_predicates();
    let out = Engine::run(engine, rule, &q, &mut client).map_err(|e| e.to_string())?;
    print_outcome(&query_text, &out, args.bool("stats"));
    Ok(())
}

// ---- the aggregation plane --------------------------------------------------

fn parse_op(args: &Args) -> Result<AggOp, String> {
    match args.required("op")? {
        "count" => Ok(AggOp::Count),
        "sum" => Ok(AggOp::Sum),
        "avg" => Ok(AggOp::Avg),
        other => Err(format!("unknown op '{other}' (count|sum|avg)")),
    }
}

/// `--range LO..HI` — inclusive on both ends, matching the wire predicate.
fn parse_range(args: &Args) -> Result<Option<(u64, u64)>, String> {
    let Some(spec) = args.flag("range") else {
        return Ok(None);
    };
    let (lo, hi) = spec
        .split_once("..")
        .ok_or("bad --range: expected LO..HI (inclusive)")?;
    let lo: u64 = lo.parse().map_err(|_| "bad --range low bound")?;
    let hi: u64 = hi.parse().map_err(|_| "bad --range high bound")?;
    if lo > hi {
        return Err(format!("empty --range {lo}..{hi}"));
    }
    Ok(Some((lo, hi)))
}

fn agg(mut args: Args) -> Result<(), String> {
    let op = parse_op(&args)?;
    let range = parse_range(&args)?;
    let engine = parse_engine(&args)?;
    let rule = parse_rule(&args)?;
    let (map, seed) = load_secrets(&args)?;
    if let Some(list) = args.flag("fleet") {
        let addrs: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let threshold: usize = args
            .required("threshold")?
            .parse()
            .map_err(|_| "bad --threshold")?;
        let query_text = args.positional("query")?;
        let resilience = resilience_options(&args)?;
        let out = if args.bool("mux") {
            let mut db = RemoteMuxFleetDb::connect_fleet_mux(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_resilience(resilience);
            db.aggregate(&query_text, engine, rule, op, range)
                .map_err(|e| e.to_string())?
        } else {
            let mut db = RemoteFleetDb::connect_fleet(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_resilience(resilience);
            db.aggregate(&query_text, engine, rule, op, range)
                .map_err(|e| e.to_string())?
        };
        print_aggregate(&query_text, &out, args.bool("stats"));
        return Ok(());
    } else if let Some(addr) = args.flag("addr") {
        let addr = addr.to_string();
        let shards: u32 = args
            .flag("shards")
            .unwrap_or("1")
            .parse()
            .map_err(|_| "bad --shards")?;
        let query_text = args.positional("query")?;
        let q = parse_query(&query_text)
            .map_err(|e| e.to_string())?
            .expand_text_predicates();
        let spec = AggregateSpec {
            query: q,
            op,
            range,
        };
        let deadline = resilience_options(&args)?.deadline;
        let out = if args.bool("mux") {
            let pool = MuxPool::connect(addr.as_str(), shards).map_err(|e| e.to_string())?;
            let mut router = ShardRouter::mux(&pool);
            router.set_call_budget(deadline);
            let mut client = ClientFilter::new(router, map, seed).map_err(|e| e.to_string())?;
            run_aggregate(&mut client, engine, rule, &spec).map_err(|e| e.to_string())?
        } else {
            let mut router =
                ShardRouter::connect(addr.as_str(), shards).map_err(|e| e.to_string())?;
            router.set_call_budget(deadline);
            let mut client = ClientFilter::new(router, map, seed).map_err(|e| e.to_string())?;
            run_aggregate(&mut client, engine, rule, &spec).map_err(|e| e.to_string())?
        };
        print_aggregate(&query_text, &out, args.bool("stats"));
        return Ok(());
    }
    let db_path = PathBuf::from(args.positional("db.ssxdb")?);
    let query_text = args.positional("query")?;
    let q = parse_query(&query_text)
        .map_err(|e| e.to_string())?
        .expand_text_predicates();
    let spec = AggregateSpec {
        query: q,
        op,
        range,
    };
    let mut client = open_db(&args, &db_path)?;
    let out = run_aggregate(&mut client, engine, rule, &spec).map_err(|e| e.to_string())?;
    print_aggregate(&query_text, &out, args.bool("stats"));
    Ok(())
}

fn print_aggregate(query_text: &str, out: &ssxdb::core::AggregateOutcome, stats: bool) {
    match out.op {
        AggOp::Count => println!("COUNT({query_text}) = {}", out.count),
        AggOp::Sum => println!(
            "SUM({query_text}) = {} over {} value(s)",
            out.sum, out.contributing
        ),
        AggOp::Avg => match out.avg_f64() {
            Some(avg) => println!(
                "AVG({query_text}) = {avg} (exactly {}/{})",
                out.sum, out.contributing
            ),
            None => println!("AVG({query_text}) = undefined (no value contributed)"),
        },
    }
    if stats {
        let s = &out.walk;
        println!("stats:");
        println!("  matches:           {}", out.count);
        println!("  contributing:      {}", out.contributing);
        println!(
            "  walk round trips:  {} (+{} closing wave(s))",
            s.round_trips, out.closing_waves
        );
        println!("  evaluations:       {}", s.evaluations());
        println!("  epoch retries:     {}", out.retries);
        println!("  elapsed:           {:?}", s.elapsed);
    }
}

// ---- the write plane --------------------------------------------------------

enum WriteOp {
    Insert(String),
    Delete(u32),
}

/// Applies one mutation to any store the facade can reach (local durable,
/// remote host, or fleet) and describes what happened.
fn apply_write<T: Transport + Send>(
    db: &mut EncryptedDb<T>,
    op: &WriteOp,
) -> Result<String, String> {
    match op {
        WriteOp::Insert(xml) => {
            let out = db.insert_document(xml).map_err(|e| e.to_string())?;
            Ok(format!(
                "inserted {} row(s); document root pre={} (numbered past high-water {})",
                out.rows, out.root_pre, out.offset
            ))
        }
        WriteOp::Delete(pre) => {
            let n = db.delete_document(*pre).map_err(|e| e.to_string())?;
            Ok(format!("deleted {n} row(s) rooted at pre={pre}"))
        }
    }
}

/// The log that shadows a local snapshot: `db.ssxdb` → `db.ssxdb.wal`.
fn wal_path(db: &Path) -> PathBuf {
    let name = db
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("store.ssxdb");
    db.with_file_name(format!("{name}.wal"))
}

/// Loads a snapshot plus whatever its sidecar log holds — acked mutations
/// a writer appended but never checkpointed must not vanish from reads.
fn load_with_log(db_path: &Path) -> Result<(Table, WalReplay), String> {
    let (table, replay) =
        load_table_with_wal(db_path, &wal_path(db_path)).map_err(|e| e.to_string())?;
    if replay.records > 0 {
        eprintln!(
            "note: replayed {} uncheckpointed log record(s) from {} (+{} row(s), -{})",
            replay.records,
            wal_path(db_path).display(),
            replay.rows_inserted,
            replay.rows_removed
        );
    }
    Ok((table, replay))
}

/// Mutates a local snapshot durably: open (replaying any log left by a
/// crash), apply, append to the log, then checkpoint — unless
/// `--no-checkpoint`, which leaves the mutation in the log alone so the
/// next open replays it.
fn local_write(args: &Args, db_path: &Path, op: &WriteOp) -> Result<(), String> {
    let (map, seed) = load_secrets(args)?;
    let shards: u32 = args
        .flag("shards")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --shards")?;
    let wal = wal_path(db_path);
    let (mut db, replay) =
        EncryptedDb::open_durable(db_path, &wal, map, seed, shards).map_err(|e| e.to_string())?;
    if replay.records > 0 {
        println!(
            "replayed {} log record(s) from {} (+{} row(s), -{})",
            replay.records,
            wal.display(),
            replay.rows_inserted,
            replay.rows_removed
        );
    }
    println!("{}", apply_write(&mut db, op)?);
    if args.bool("no-checkpoint") {
        println!(
            "not checkpointed: the mutation lives in {} until the next open replays it",
            wal.display()
        );
    } else {
        db.checkpoint(db_path).map_err(|e| e.to_string())?;
        println!(
            "checkpointed {} ({} node(s)); log truncated",
            db_path.display(),
            db.node_count()
        );
    }
    Ok(())
}

/// Mutates a live host (`--addr`) or fleet (`--fleet`) in place. The
/// client encodes at the store's high-water `pre` and ships ready-made
/// share rows; the server never sees the secrets.
fn remote_write(args: &Args, op: &WriteOp) -> Result<(), String> {
    let (map, seed) = load_secrets(args)?;
    let resilience = resilience_options(args)?;
    let msg = if let Some(list) = args.flag("fleet") {
        let addrs: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let threshold: usize = args
            .required("threshold")?
            .parse()
            .map_err(|_| "bad --threshold")?;
        if args.bool("mux") {
            let mut db = RemoteMuxFleetDb::connect_fleet_mux(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_resilience(resilience);
            apply_write(&mut db, op)?
        } else {
            let mut db = RemoteFleetDb::connect_fleet(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_resilience(resilience);
            apply_write(&mut db, op)?
        }
    } else {
        let addr = args.required("addr")?.to_string();
        let shards: u32 = args
            .flag("shards")
            .unwrap_or("1")
            .parse()
            .map_err(|_| "bad --shards")?;
        if args.bool("mux") {
            let pool = MuxPool::connect(addr.as_str(), shards).map_err(|e| e.to_string())?;
            let mut db = RemoteMuxDb::connect_mux(&pool, map, seed).map_err(|e| e.to_string())?;
            db.set_deadline(resilience.deadline);
            apply_write(&mut db, op)?
        } else {
            let mut db =
                RemoteDb::connect(addr.as_str(), shards, map, seed).map_err(|e| e.to_string())?;
            db.set_deadline(resilience.deadline);
            apply_write(&mut db, op)?
        }
    };
    println!("{msg}");
    Ok(())
}

fn insert(mut args: Args) -> Result<(), String> {
    if args.flag("addr").is_some() || args.flag("fleet").is_some() {
        let xml_path = PathBuf::from(args.positional("doc.xml")?);
        let xml = std::fs::read_to_string(&xml_path).map_err(|e| e.to_string())?;
        return remote_write(&args, &WriteOp::Insert(xml));
    }
    let db_path = PathBuf::from(args.positional("db.ssxdb")?);
    let xml_path = PathBuf::from(args.positional("doc.xml")?);
    let xml = std::fs::read_to_string(&xml_path).map_err(|e| e.to_string())?;
    local_write(&args, &db_path, &WriteOp::Insert(xml))
}

fn delete(mut args: Args) -> Result<(), String> {
    if args.flag("addr").is_some() || args.flag("fleet").is_some() {
        let pre: u32 = args
            .positional("root-pre")?
            .parse()
            .map_err(|_| "bad <root-pre>")?;
        return remote_write(&args, &WriteOp::Delete(pre));
    }
    let db_path = PathBuf::from(args.positional("db.ssxdb")?);
    let pre: u32 = args
        .positional("root-pre")?
        .parse()
        .map_err(|_| "bad <root-pre>")?;
    local_write(&args, &db_path, &WriteOp::Delete(pre))
}

fn serve(mut args: Args) -> Result<(), String> {
    let p: u64 = args.required("p")?.parse().map_err(|_| "bad --p")?;
    let e: u32 = args
        .flag("e")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --e")?;
    let shards: u32 = args
        .flag("shards")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --shards")?;
    let addr = args.required("addr")?.to_string();
    let db_path = PathBuf::from(args.positional("db.ssxdb")?);
    let ring = RingCtx::new(p, e).map_err(|err| err.to_string())?;
    let auto_target: Option<u64> = match args.flag("auto-reshard-target") {
        Some(v) => Some(v.parse().map_err(|_| "bad --auto-reshard-target")?),
        None => None,
    };
    if let Some(i) = args.flag("party") {
        if auto_target.is_some() {
            return Err(
                "--auto-reshard-target cannot run on a fleet party host: repartitioning \
                 would merge its data and MAC planes"
                    .into(),
            );
        }
        let party: u32 = i.parse().map_err(|_| "bad --party")?;
        let (header, data, mac) = load_party(&db_path).map_err(|err| err.to_string())?;
        if header.party != party {
            return Err(format!(
                "{} holds party {}'s shares, not party {party}'s",
                db_path.display(),
                header.party
            ));
        }
        let server = party_server(data, mac, &ring, shards).map_err(|err| err.to_string())?;
        let listener = std::net::TcpListener::bind(&addr).map_err(|err| err.to_string())?;
        println!(
            "serving party {party} of {} (threshold {}) on {addr}: {shards} data shard(s) \
             + MAC mirror (Ctrl-C or a Shutdown request stops it)",
            header.servers, header.threshold
        );
        let server = if args.bool("mux") {
            let opts = mux_host_options(&args, None)?;
            serve_tcp_mux_opts(listener, server, opts).map_err(|err| err.to_string())?
        } else {
            serve_tcp_sharded(listener, server).map_err(|err| err.to_string())?
        };
        for (i, f) in server.filters().iter().enumerate() {
            let s = f.stats();
            let plane = if (i as u32) < shards { "data" } else { "mac" };
            println!(
                "{plane} shard {}: {} rows, {} requests, {} evaluations",
                i as u32 % shards,
                f.table().len(),
                s.requests,
                s.evaluations
            );
        }
        return Ok(());
    }
    let (table, _) = load_with_log(&db_path)?;
    let listener = std::net::TcpListener::bind(&addr).map_err(|err| err.to_string())?;
    if args.bool("mux") {
        let opts = mux_host_options(&args, auto_target)?;
        let server =
            ShardedServer::from_table(table, ring, shards).map_err(|err| err.to_string())?;
        println!(
            "serving {} on {addr} across {shards} shard(s), multiplexed \
             (fixed thread pool; Ctrl-C or a Shutdown request stops it)",
            db_path.display()
        );
        let server = serve_tcp_mux_opts(listener, server, opts).map_err(|err| err.to_string())?;
        for (i, f) in server.filters().iter().enumerate() {
            let s = f.stats();
            println!(
                "shard {i}: {} rows, {} requests, {} evaluations, {} polynomials",
                f.table().len(),
                s.requests,
                s.evaluations,
                s.polys_served
            );
        }
        return Ok(());
    }
    if shards <= 1 && auto_target.is_none() {
        let server = ServerFilter::new(table, ring);
        println!(
            "serving {} on {addr} (Ctrl-C or a Shutdown request stops it)",
            db_path.display()
        );
        let server = serve_tcp(listener, server).map_err(|err| err.to_string())?;
        let stats = server.stats();
        println!(
            "served {} requests: {} evaluations, {} polynomials",
            stats.requests, stats.evaluations, stats.polys_served
        );
    } else {
        // --auto-reshard-target always goes through the sharded host, even
        // at --shards 1: the ticker needs a repartitionable fleet to grow.
        let server =
            ShardedServer::from_table(table, ring, shards).map_err(|err| err.to_string())?;
        println!(
            "serving {} on {addr} across {shards} shard(s), one thread per connection \
             (Ctrl-C or a Shutdown request stops it)",
            db_path.display()
        );
        let server =
            serve_tcp_sharded_auto(listener, server, auto_target).map_err(|err| err.to_string())?;
        for (i, f) in server.filters().iter().enumerate() {
            let s = f.stats();
            println!(
                "shard {i}: {} rows, {} requests, {} evaluations, {} polynomials",
                f.table().len(),
                s.requests,
                s.evaluations,
                s.polys_served
            );
        }
    }
    Ok(())
}

fn remote(mut args: Args) -> Result<(), String> {
    let (map, seed) = load_secrets(&args)?;
    if let Some(list) = args.flag("fleet") {
        let addrs: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let threshold: usize = args
            .required("threshold")?
            .parse()
            .map_err(|_| "bad --threshold")?;
        let query_text = args.positional("query")?;
        let engine = parse_engine(&args)?;
        let rule = parse_rule(&args)?;
        let resilience = resilience_options(&args)?;
        let out = if args.bool("mux") {
            let mut db = RemoteMuxFleetDb::connect_fleet_mux(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_speculation(args.bool("speculate"));
            db.set_resilience(resilience);
            db.query(&query_text, engine, rule)
                .map_err(|e| e.to_string())?
        } else {
            let mut db = RemoteFleetDb::connect_fleet(&addrs, threshold, map, seed)
                .map_err(|e| e.to_string())?;
            db.set_speculation(args.bool("speculate"));
            db.set_resilience(resilience);
            db.query(&query_text, engine, rule)
                .map_err(|e| e.to_string())?
        };
        print_outcome(&query_text, &out, args.bool("stats"));
        return Ok(());
    }
    let addr = args.required("addr")?.to_string();
    let shards: u32 = args
        .flag("shards")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --shards")?;
    let query_text = args.positional("query")?;
    let engine = parse_engine(&args)?;
    let rule = parse_rule(&args)?;
    let q = parse_query(&query_text)
        .map_err(|e| e.to_string())?
        .expand_text_predicates();
    // Always connect through a router: its handshake refuses a shard count
    // that disagrees with the server's (which would silently skip
    // partitions), and with `--shards 1` it speaks the untagged legacy
    // protocol. `--mux` rides the correlation envelope instead — one
    // multiplexed socket per shard.
    let deadline = resilience_options(&args)?.deadline;
    let out = if args.bool("mux") {
        let pool = MuxPool::connect(addr.as_str(), shards).map_err(|e| e.to_string())?;
        let mut router = ShardRouter::mux(&pool);
        router.set_speculation(args.bool("speculate"));
        router.set_call_budget(deadline);
        let mut client = ClientFilter::new(router, map, seed).map_err(|e| e.to_string())?;
        Engine::run(engine, rule, &q, &mut client).map_err(|e| e.to_string())?
    } else {
        let mut router = ShardRouter::connect(addr.as_str(), shards).map_err(|e| e.to_string())?;
        router.set_speculation(args.bool("speculate"));
        router.set_call_budget(deadline);
        let mut client = ClientFilter::new(router, map, seed).map_err(|e| e.to_string())?;
        Engine::run(engine, rule, &q, &mut client).map_err(|e| e.to_string())?
    };
    print_outcome(&query_text, &out, args.bool("stats"));
    Ok(())
}

fn reshard(args: Args) -> Result<(), String> {
    use ssxdb::core::protocol::{Request, Response};
    use ssxdb::core::{TcpTransport, Transport};
    let addr = args.required("addr")?.to_string();
    let shards: u32 = args
        .required("shards")?
        .parse()
        .map_err(|_| "bad --shards")?;
    let mut transport = TcpTransport::connect(addr.as_str()).map_err(|e| e.to_string())?;
    match transport
        .call(&Request::Reshard { shards })
        .map_err(|e| e.to_string())?
    {
        Response::Ok => {}
        Response::Err(e) => return Err(format!("server refused reshard: {e}")),
        other => return Err(format!("unexpected reshard response {other:?}")),
    }
    match transport
        .call(&Request::ShardCount)
        .map_err(|e| e.to_string())?
    {
        Response::Count(n) => {
            println!("{addr} now serves {n} shard(s); reconnect clients with --shards {n}")
        }
        other => return Err(format!("unexpected handshake response {other:?}")),
    }
    Ok(())
}

fn print_outcome(query_text: &str, out: &ssxdb::core::QueryOutcome, stats: bool) {
    println!("{query_text}: {} match(es)", out.result.len());
    for loc in &out.result {
        println!(
            "  node pre={} post={} parent={}",
            loc.pre, loc.post, loc.parent
        );
    }
    if stats {
        let s = &out.stats;
        println!("stats:");
        println!("  containment tests: {}", s.containment_tests);
        println!("  equality tests:    {}", s.equality_tests);
        println!(
            "  evaluations:       {} ({} client + {} server)",
            s.evaluations(),
            s.client_evals,
            s.server_evals
        );
        println!("  polys fetched:     {}", s.polys_fetched);
        println!("  round trips:       {}", s.round_trips);
        if s.speculative_hits > 0 || s.speculative_wasted > 0 {
            println!(
                "  speculation:       {} hits / {} wasted",
                s.speculative_hits, s.speculative_wasted
            );
        }
        if s.hedged_wins > 0 || s.straggler_ms > 0 {
            println!(
                "  hedging:           {} waves answered early ({} straggler ms not waited for)",
                s.hedged_wins, s.straggler_ms
            );
        }
        println!(
            "  bytes sent/recv:   {} / {}",
            s.bytes_sent, s.bytes_received
        );
        println!("  elapsed:           {:?}", s.elapsed);
    }
}
