#![warn(missing_docs)]

//! # ssxdb — a secret-shared XML database
//!
//! A from-scratch Rust reproduction of
//! *Brinkman, Schoenmakers, Doumen, Jonker — "Experiments with Queries over
//! Encrypted Data Using Secret Sharing"* (Secure Data Management workshop @
//! VLDB, 2005).
//!
//! An XML document's tag tree is encoded bottom-up into polynomials over
//! `F_q[x]/(x^{q-1} − 1)`; every node polynomial is additively split into a
//! pseudorandom **client share** (regenerable from a secret seed) and a
//! **server share** stored — with pre/post/parent numbers — in a
//! B-tree-indexed table. The server can answer structural navigation and
//! evaluate its shares at points the client names, but learns neither tag
//! names nor document content. XPath-style queries run interactively with
//! two engines (left-to-right `SimpleQuery`, look-ahead `AdvancedQuery`)
//! and two matching rules (cheap *containment*, exact *equality*).
//!
//! ## Quick start
//!
//! ```
//! use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
//! use ssxdb::prg::Seed;
//!
//! // Client secrets: the tag map and the seed.
//! let map = MapFile::sequential(83, 1, &["library", "shelf", "book"]).unwrap();
//! let seed = Seed::from_test_key(42);
//!
//! // Encode a document; the server stores only its shares.
//! let xml = "<library><shelf><book/><book/></shelf></library>";
//! let mut db = EncryptedDb::encode(xml, map, seed).unwrap();
//!
//! // Query over the encrypted data.
//! let hits = db.query("/library//book", EngineKind::Advanced, MatchRule::Equality).unwrap();
//! assert_eq!(hits.result.len(), 2);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`field`] | finite fields `F_{p^e}` (Miller–Rabin, Rabin irreducibility) |
//! | [`poly`] | the encoding ring, secret sharing, root extraction, packing |
//! | [`prg`] | deterministic PRG keyed by `(seed, node)` |
//! | [`xml`] | pull parser, arena DOM, serializer |
//! | [`xpath`] | the query subset + trie translation |
//! | [`trie`] | §4 trie representation of text data |
//! | [`store`] | B-tree indexed table, persistence (the MySQL stand-in) |
//! | [`xmark`] | deterministic XMark-style document generator |
//! | [`core`] | encoder, client/server filters, transports, engines |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results of every figure and table.

pub use ssx_core as core;
pub use ssx_field as field;
pub use ssx_poly as poly;
pub use ssx_prg as prg;
pub use ssx_store as store;
pub use ssx_trie as trie;
pub use ssx_xmark as xmark;
pub use ssx_xml as xml;
pub use ssx_xpath as xpath;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
        use crate::prg::Seed;
        let map = MapFile::sequential(83, 1, &["a", "b"]).unwrap();
        let mut db = EncryptedDb::encode("<a><b/></a>", map, Seed::from_test_key(1)).unwrap();
        let out = db
            .query("/a/b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.result.len(), 1);
    }
}
